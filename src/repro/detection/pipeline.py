"""The end-to-end detection pipeline (§III-C), producing Tables I–IV.

Stages: category-filter the corpus, signature-scan the video-related
sites and the sampled APKs, dynamically confirm every potential
customer, and separately test the top-10K generic-WebRTC sites for
private PDN services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.categorize import default_engines, is_video_related
from repro.detection.dynamic import ConfirmationResult, DynamicConfirmer
from repro.detection.scanner import ApkScanner, ScanResult, WebsiteScanner
from repro.detection.signatures import GENERIC_WEBRTC_SIGNATURES, provider_signatures
from repro.detection.source_search import SourceSearchEngine
from repro.environment import Environment
from repro.harness.result import content_digest
from repro.web.corpus import Corpus


def combined_signatures() -> list:
    """The full scan signature list: provider-specific plus generic WebRTC.

    Built once per run and shared by the crawler and the source-search
    queries (the regexes themselves are cached at compile time).
    """
    return provider_signatures() + GENERIC_WEBRTC_SIGNATURES


@dataclass
class ProviderCounts:
    """One row of Table I."""

    provider: str
    potential_sites: int = 0
    confirmed_sites: int = 0
    potential_apps: int = 0
    confirmed_apps: int = 0
    potential_apks: int = 0
    confirmed_apks: int = 0


@dataclass
class PipelineReport:
    """Everything the detection stage produced."""

    virtual_total_domains: int = 0
    virtual_video_related: int = 0
    video_related_scanned: int = 0
    site_scans: dict[str, ScanResult] = field(default_factory=dict)
    app_scans: dict[str, ScanResult] = field(default_factory=dict)
    site_confirmations: dict[str, ConfirmationResult] = field(default_factory=dict)
    app_confirmations: dict[str, ConfirmationResult] = field(default_factory=dict)
    private_confirmations: dict[str, ConfirmationResult] = field(default_factory=dict)
    generic_webrtc_sites: list[str] = field(default_factory=list)
    relay_sites: list[str] = field(default_factory=list)
    extracted_keys: set[str] = field(default_factory=set)
    source_search_hits: set[str] = field(default_factory=set)

    # -- derived views --------------------------------------------------------

    def potential_sites(self, provider: str | None = None) -> list[str]:
        """Potential sites."""
        out = []
        for domain, scan in self.site_scans.items():
            if not scan.is_potential:
                continue
            attributed = scan.provider()
            if attributed == "webrtc-generic":
                continue
            if provider is None or attributed == provider:
                out.append(domain)
        return sorted(out)

    def confirmed_sites(self, provider: str | None = None) -> list[str]:
        """Confirmed sites."""
        return sorted(
            d
            for d in self.potential_sites(provider)
            if self.site_confirmations.get(d) and self.site_confirmations[d].confirmed
        )

    def potential_apps(self, provider: str | None = None) -> list[str]:
        """Potential apps."""
        out = []
        for package, scan in self.app_scans.items():
            if not scan.is_potential:
                continue
            if provider is None or scan.provider() == provider:
                out.append(package)
        return sorted(out)

    def confirmed_apps(self, provider: str | None = None) -> list[str]:
        """Confirmed apps."""
        return sorted(
            p
            for p in self.potential_apps(provider)
            if self.app_confirmations.get(p) and self.app_confirmations[p].confirmed
        )

    def confirmed_private(self) -> list[str]:
        """Confirmed private."""
        return sorted(
            d for d, result in self.private_confirmations.items() if result.confirmed
        )

    def provider_counts(self, provider: str) -> ProviderCounts:
        """One Table I row, in a single walk over the scan maps.

        The derived views above re-scan every result per call; building
        a row through them walked the maps six times per provider. Here
        each scan is attributed once and every counter for the row is
        accumulated in the same pass.
        """
        counts = ProviderCounts(provider)
        for domain, scan in self.site_scans.items():
            if not scan.is_potential or scan.provider() != provider:
                continue
            counts.potential_sites += 1
            confirmation = self.site_confirmations.get(domain)
            if confirmation and confirmation.confirmed:
                counts.confirmed_sites += 1
        for package, scan in self.app_scans.items():
            if not scan.is_potential or scan.provider() != provider:
                continue
            counts.potential_apps += 1
            counts.potential_apks += scan.pdn_apk_versions
            confirmation = self.app_confirmations.get(package)
            if confirmation and confirmation.confirmed:
                counts.confirmed_apps += 1
                counts.confirmed_apks += scan.pdn_apk_versions
        return counts

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON form, identical for monolithic and streamed runs.

        Only *potential* scans are kept: the streaming pipeline never
        retains clean scans (that is its memory bound), so serializing
        them here would make the two execution styles digest apart.
        """
        return {
            "virtual_total_domains": self.virtual_total_domains,
            "virtual_video_related": self.virtual_video_related,
            "video_related_scanned": self.video_related_scanned,
            "site_scans": {
                d: s.to_dict() for d, s in sorted(self.site_scans.items()) if s.is_potential
            },
            "app_scans": {
                p: s.to_dict() for p, s in sorted(self.app_scans.items()) if s.is_potential
            },
            "site_confirmations": {
                d: r.to_dict() for d, r in sorted(self.site_confirmations.items())
            },
            "app_confirmations": {
                p: r.to_dict() for p, r in sorted(self.app_confirmations.items())
            },
            "private_confirmations": {
                d: r.to_dict() for d, r in sorted(self.private_confirmations.items())
            },
            "generic_webrtc_sites": sorted(self.generic_webrtc_sites),
            "relay_sites": sorted(self.relay_sites),
            "extracted_keys": sorted(self.extracted_keys),
            "source_search_hits": sorted(self.source_search_hits),
        }

    def content_digest(self) -> str:
        """Digest of the canonical form — the shard-invariance invariant."""
        return content_digest(self.to_dict())


class DetectionPipeline:
    """Runs the full §III-C methodology over a corpus."""

    def __init__(
        self,
        env: Environment,
        corpus: Corpus,
        watch_seconds: float = 40.0,
        probe_country: str = "US",
        confirm: bool = True,
    ) -> None:
        self.env = env
        self.corpus = corpus
        self.watch_seconds = watch_seconds
        self.probe_country = probe_country
        self.confirm = confirm

    def run(self) -> PipelineReport:
        """Execute and return the outcome."""
        report = PipelineReport(
            virtual_total_domains=self.corpus.config.virtual_total_domains,
            virtual_video_related=self.corpus.config.virtual_video_related,
        )
        self._scan_websites(report)
        self._scan_apps(report)
        if self.confirm:
            self._confirm(report)
            self._test_private(report)
        return report

    # -- stage 1: category filter + signature scan ---------------------------------

    def _scan_websites(self, report: PipelineReport) -> None:
        engines = default_engines(self.env.rand.fork("category-engines"))
        signatures = combined_signatures()
        scanner = WebsiteScanner(self.env.urlspace, signatures=signatures)
        # Source-search engines (NerdyData/PublicWWW) rescue PDN customers
        # the category filter dropped, exactly as the paper used them.
        search_engine = SourceSearchEngine("nerdydata+publicwww")
        for site in self.corpus.websites:
            search_engine.index_site(self.env.urlspace, site)
        report.source_search_hits = search_engine.search_all(signatures)
        for site in self.corpus.websites:
            if not is_video_related(site, engines) and site.domain not in report.source_search_hits:
                continue
            report.video_related_scanned += 1
            scan = scanner.scan(site.domain)
            report.site_scans[site.domain] = scan
            report.extracted_keys.update(scan.extracted_keys)
            if scan.is_potential and scan.provider() == "webrtc-generic":
                report.generic_webrtc_sites.append(site.domain)

    def _scan_apps(self, report: PipelineReport) -> None:
        scanner = ApkScanner()
        for app in self.corpus.apps:
            scan = scanner.scan(app)
            report.app_scans[app.package_name] = scan
            report.extracted_keys.update(scan.extracted_keys)

    # -- stage 2: dynamic confirmation -----------------------------------------------

    def _confirm(self, report: PipelineReport) -> None:
        confirmer = DynamicConfirmer(
            self.env, watch_seconds=self.watch_seconds, probe_country=self.probe_country
        )
        for domain in report.potential_sites():
            site = self.corpus.website(domain)
            if site is not None:
                report.site_confirmations[domain] = confirmer.confirm_site(site)
        for package in report.potential_apps():
            app = self.corpus.app(package)
            if app is not None:
                report.app_confirmations[package] = confirmer.confirm_app(app)

    def _test_private(self, report: PipelineReport) -> None:
        """Dynamically test the top-10K sites matching generic signatures."""
        confirmer = DynamicConfirmer(
            self.env, watch_seconds=self.watch_seconds, probe_country=self.probe_country
        )
        for domain in self.corpus.top10k_webrtc_domains:
            site = self.corpus.website(domain)
            if site is None:
                continue
            result = confirmer.confirm_site(site)
            report.private_confirmations[domain] = result
            if result.relay_suspected:
                report.relay_sites.append(domain)
