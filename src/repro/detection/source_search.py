"""Source-code search engines (the NerdyData / PublicWWW analog).

§III-C: besides the category-filtered Tranco crawl, the paper queried
source-code search engines with the PDN signatures, which "reported 44
potential PDN-related websites" — rescuing customers the category
engines missed. This module maintains a source index over the corpus
and answers signature queries against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.signatures import Signature
from repro.streaming.http import HttpClient, UrlSpace
from repro.web.page import Website


@dataclass
class SourceSearchEngine:
    """A page-source index queryable by string/signature."""

    name: str = "source-search"
    _index: dict[str, str] = field(default_factory=dict)
    pages_indexed: int = 0

    def index_site(self, urlspace: UrlSpace, site: Website, max_pages: int = 10) -> None:
        """Crawl and index a site's page sources (landing + one level)."""
        http = HttpClient(urlspace, client_ip="198.18.0.2")  # the engine's crawler
        sources: list[str] = []
        landing = http.get(f"https://{site.domain}/")
        if not landing.ok:
            return
        html = landing.body.decode(errors="replace")
        sources.append(html)
        self.pages_indexed += 1
        for link in _links(html)[: max_pages - 1]:
            response = http.get(f"https://{site.domain}{link}")
            if response.ok:
                sources.append(response.body.decode(errors="replace"))
                self.pages_indexed += 1
        self._index[site.domain] = "\n".join(sources)

    def search(self, query: Signature | str) -> list[str]:
        """Domains whose indexed source matches the query."""
        if isinstance(query, Signature):
            matcher = query.matches
        else:
            matcher = lambda text: query in text
        return sorted(domain for domain, text in self._index.items() if matcher(text))

    def search_all(self, queries: list[Signature]) -> set[str]:
        """The union of :meth:`search` hits over every query."""
        hits: set[str] = set()
        for query in queries:
            hits.update(self.search(query))
        return hits

    def match_site(
        self,
        urlspace: UrlSpace,
        site: Website,
        queries: list[Signature | str],
        retain: bool = False,
    ) -> bool:
        """Index one site and answer whether any query matches it.

        The streaming pipeline's entry point: per-site membership in the
        engine's hit set is independent of every other site, so shards
        can evaluate it locally and union the hits. With ``retain=False``
        the indexed source is dropped immediately, keeping the engine's
        memory bounded to one site regardless of corpus size.
        """
        self.index_site(urlspace, site)
        source = self._index.get(site.domain, "")
        matched = any(
            (q.matches(source) if isinstance(q, Signature) else q in source) for q in queries
        )
        if not retain:
            self._index.pop(site.domain, None)
        return matched


def _links(html: str) -> list[str]:
    out = []
    for chunk in html.split('href="')[1:]:
        target = chunk.split('"', 1)[0]
        if target.startswith("/"):
            out.append(target)
    return out
