"""PDN fingerprinting signatures.

Derived the way the paper derived them — from provider documentation and
SDK artifacts: URL patterns (``api.peer5.com/peer5.js?id=*``), unique
Android namespaces (``com.viblast.android``), manifest metadata keys
(``io.streamroot.dna.StreamrootKey``), and the generic WebRTC markers
that surface private services.
"""

from __future__ import annotations

import enum
import functools
import re
from dataclasses import dataclass

from repro.pdn.provider import PUBLIC_PROVIDERS, ProviderProfile


class SignatureKind(enum.Enum):
    """Where a fingerprint lives: a URL, an Android namespace, a manifest
    metadata key, or raw page/JS content."""
    URL_PATTERN = "url_pattern"
    NAMESPACE = "namespace"
    MANIFEST_KEY = "manifest_key"
    CONTENT = "content"  # generic string in page/JS source


@functools.lru_cache(maxsize=None)
def _compile_signature(kind: SignatureKind, pattern: str) -> re.Pattern:
    """Compile once per distinct (kind, pattern); the scanner calls
    ``matches()`` for every signature on every page, so recompiling here
    dominated scan time (see benchmarks/bench_signature_compile.py)."""
    if kind is SignatureKind.URL_PATTERN:
        # '*' wildcards; everything else literal.
        return re.compile(".*".join(re.escape(part) for part in pattern.split("*")))
    return re.compile(re.escape(pattern))


@dataclass(frozen=True)
class Signature:
    """One matchable fingerprint, attributed to a provider (or generic)."""

    kind: SignatureKind
    pattern: str
    provider: str  # provider name, or "webrtc-generic"

    def compiled(self) -> re.Pattern:
        """The compiled form of this signature's pattern (process-wide cache)."""
        return _compile_signature(self.kind, self.pattern)

    def matches(self, text: str) -> bool:
        """True when the fingerprint occurs anywhere in ``text``."""
        return self.compiled().search(text) is not None


def provider_signatures(profiles: tuple[ProviderProfile, ...] = PUBLIC_PROVIDERS) -> list[Signature]:
    """Signatures for the public providers."""
    signatures: list[Signature] = []
    for profile in profiles:
        url_pattern = profile.sdk_url_pattern.format(key="*")
        for prefix in ("https://", "http://"):
            if url_pattern.startswith(prefix):
                url_pattern = url_pattern[len(prefix) :]
        signatures.append(Signature(SignatureKind.URL_PATTERN, url_pattern, profile.name))
        if profile.android_namespace:
            signatures.append(
                Signature(SignatureKind.NAMESPACE, profile.android_namespace, profile.name)
            )
        if profile.manifest_key:
            signatures.append(
                Signature(SignatureKind.MANIFEST_KEY, profile.manifest_key, profile.name)
            )
    return signatures


GENERIC_WEBRTC_SIGNATURES: list[Signature] = [
    Signature(SignatureKind.CONTENT, "new RTCPeerConnection", "webrtc-generic"),
    Signature(SignatureKind.CONTENT, "new WebSocket('wss://", "webrtc-generic"),
]

# Regexes for extracting API keys out of page source (§IV-B: 44 of the
# keys were extractable this way; the rest are obfuscated or loaded at
# runtime).
KEY_EXTRACTION_PATTERNS = [
    re.compile(r"pdnApiKey\s*=\s*'([0-9a-f]{8,})'"),
    re.compile(r"peer5\.js\?id=([0-9a-f]{8,})"),
    re.compile(r"/dna/([0-9a-f]{8,})/dna\.js"),
    re.compile(r"/vb/([0-9a-f]{8,})/viblast\.js"),
]


def extract_api_keys(html: str) -> set[str]:
    """Regex key extraction; defeated by obfuscation, as in the paper."""
    keys: set[str] = set()
    for pattern in KEY_EXTRACTION_PATTERNS:
        keys.update(pattern.findall(html))
    return keys
