"""PDN traffic classification (the dynamic detector's Wireshark stage).

§III-C: "PDN utilizes the plain-text STUN protocol to exchange IP
information between peers ... As WebRTC enforces a DTLS handshake
between peers, we then checked all the DTLS connections that typically
follow the STUN binding requests. If a DTLS connection is observed
between known candidate peer pairs, we consider the respective website
or app a confirmed PDN customer."

This module runs that exact decision procedure over a
:class:`~repro.net.capture.TrafficCapture`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import Endpoint
from repro.net.capture import TrafficCapture
from repro.util.errors import StunDecodeError
from repro.webrtc.dtls import is_dtls_datagram
from repro.webrtc.stun import StunClass, StunMethod, decode_stun, is_stun_datagram


@dataclass
class StunObservation:
    """One parsed STUN binding request seen on the wire."""

    at: float
    src: Endpoint
    dst: Endpoint
    username: str | None


@dataclass
class PdnTrafficReport:
    """What the classifier found in a capture."""

    stun_requests: list[StunObservation] = field(default_factory=list)
    candidate_pairs: set[frozenset] = field(default_factory=set)  # {ip_a, ip_b}
    dtls_pairs: set[frozenset] = field(default_factory=set)
    observed_peer_ips: set[str] = field(default_factory=set)
    turn_allocations: int = 0
    turn_indications: int = 0

    @property
    def turn_activity(self) -> bool:
        """TURN allocations plus relayed data: the xhamsterlive/stripchat
        pattern — WebRTC used, but peer traffic hidden behind relays."""
        return self.turn_allocations > 0 and self.turn_indications > 0

    @property
    def confirmed_pairs(self) -> set[frozenset]:
        """Peer pairs with both STUN checks and a following DTLS flow."""
        return self.candidate_pairs & self.dtls_pairs

    @property
    def pdn_confirmed(self) -> bool:
        """Pdn confirmed."""
        return bool(self.confirmed_pairs)

    def to_dict(self) -> dict:
        """Canonical JSON form: pair sets as sorted lists of sorted pairs."""
        return {
            "stun_requests": len(self.stun_requests),
            "candidate_pairs": sorted(sorted(pair) for pair in self.candidate_pairs),
            "dtls_pairs": sorted(sorted(pair) for pair in self.dtls_pairs),
            "observed_peer_ips": sorted(self.observed_peer_ips),
            "turn_allocations": self.turn_allocations,
            "turn_indications": self.turn_indications,
        }


def classify_capture(
    capture: TrafficCapture,
    infrastructure_ips: set[str] | None = None,
) -> PdnTrafficReport:
    """Parse a capture into a PDN traffic report.

    ``infrastructure_ips`` (STUN/TURN servers) are excluded from peer-pair
    analysis — binding requests to a public STUN server are not
    peer-to-peer activity.
    """
    infra = infrastructure_ips or set()
    report = PdnTrafficReport()
    for packet in capture.packets:
        if packet.dropped:
            continue
        pair = frozenset({packet.src.ip, packet.dst.ip})
        if is_stun_datagram(packet.payload):
            try:
                message = decode_stun(packet.payload)
            except StunDecodeError:
                continue
            # TURN activity is counted regardless of infrastructure
            # filtering: a relayed deployment shows nothing *but* this.
            if message.method is StunMethod.ALLOCATE:
                report.turn_allocations += 1
            elif message.method in (StunMethod.SEND, StunMethod.DATA):
                report.turn_indications += 1
            if packet.src.ip in infra or packet.dst.ip in infra:
                continue
            if message.method is StunMethod.BINDING and message.msg_class is StunClass.REQUEST:
                report.stun_requests.append(
                    StunObservation(packet.time, packet.src, packet.dst, message.username())
                )
                # Connectivity checks carry an ICE USERNAME; pure
                # server-binding requests do not involve a peer pair.
                if message.username() is not None and len(pair) == 2:
                    report.candidate_pairs.add(pair)
                    report.observed_peer_ips.update(pair)
        elif is_dtls_datagram(packet.payload):
            if packet.src.ip in infra or packet.dst.ip in infra:
                continue
            if len(pair) == 2:
                report.dtls_pairs.add(pair)
    return report
