"""Dynamic PDN-traffic confirmation.

For each potential customer the paper "randomly selected 3 video links
and watched them for 15 minutes" while capturing traffic. The confirmer
does the same with probe browsers: it opens up to three of the target's
video pages with two probes (so a swarm can form), captures the probes'
traffic, and runs the STUN→DTLS classifier. Confirmation can fail for
the same reasons the paper reports — geolocation restrictions,
subscription requirements, deep pages the crawler missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.traffic import PdnTrafficReport, classify_capture
from repro.environment import Environment
from repro.net.capture import TrafficCapture
from repro.web.apk import AndroidApp
from repro.web.browser import Browser
from repro.web.page import Website


@dataclass
class ConfirmationResult:
    """Dynamic analysis outcome for one target."""

    target: str
    confirmed: bool
    report: PdnTrafficReport
    relay_suspected: bool = False  # traffic confirmed but no probe IP visible
    pages_tested: int = 0
    failure_hints: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Canonical JSON form (traffic compacted via the report's)."""
        return {
            "target": self.target,
            "confirmed": self.confirmed,
            "relay_suspected": self.relay_suspected,
            "pages_tested": self.pages_tested,
            "failure_hints": list(self.failure_hints),
            "traffic": self.report.to_dict(),
        }


class DynamicConfirmer:
    """Runs potential customers with probe viewers and classifies traffic."""

    def __init__(
        self,
        env: Environment,
        watch_seconds: float = 40.0,
        probe_country: str = "US",
        max_links: int = 3,
    ) -> None:
        self.env = env
        self.watch_seconds = watch_seconds
        self.probe_country = probe_country
        self.max_links = max_links
        self.targets_tested = 0

    def _infrastructure_ips(self) -> set[str]:
        ips = {self.env.stun.host.public_ip}
        if self.env._turn is not None:
            ips.add(self.env._turn.host.public_ip)
        return ips

    def confirm_site(self, site: Website) -> ConfirmationResult:
        """Open up to ``max_links`` video pages with two probe viewers."""
        self.targets_tested += 1
        video_pages = [p for p in site.pages.values() if p.has_video]
        video_pages = video_pages[: self.max_links]
        probe_a = Browser(self.env, country=self.probe_country)
        probe_b = Browser(self.env, country=self.probe_country)
        capture = TrafficCapture(
            f"dyn:{site.domain}", interface_ips=[probe_a.host.public_ip, probe_b.host.public_ip]
        )
        self.env.network.add_capture(capture)
        hints = []
        for page in video_pages:
            url = f"https://{site.domain}{page.path}"
            session_a = probe_a.open(url)
            session_b = probe_b.open(url)
            self.env.run(self.watch_seconds)
            for session in (session_a, session_b):
                if session.skip_reason:
                    hints.append(session.skip_reason)
                session.close()
        capture.stop()  # deregisters from the network's tap list
        result = self._classify(site.domain, capture, {probe_a.host.public_ip, probe_b.host.public_ip})
        result.pages_tested = len(video_pages)
        result.failure_hints = sorted(set(hints))
        probe_a.close()
        probe_b.close()
        return result

    def confirm_app(self, app: AndroidApp) -> ConfirmationResult:
        """Run the app's latest APK in two probe devices."""
        self.targets_tested += 1
        probe_a = Browser(self.env, country=self.probe_country)
        probe_b = Browser(self.env, country=self.probe_country)
        capture = TrafficCapture(
            f"dyn:{app.package_name}",
            interface_ips=[probe_a.host.public_ip, probe_b.host.public_ip],
        )
        self.env.network.add_capture(capture)
        session_a = probe_a.run_app(app)
        session_b = probe_b.run_app(app)
        self.env.run(self.watch_seconds)
        hints = [s.skip_reason for s in (session_a, session_b) if s.skip_reason]
        session_a.close()
        session_b.close()
        capture.stop()  # deregisters from the network's tap list
        result = self._classify(
            app.package_name, capture, {probe_a.host.public_ip, probe_b.host.public_ip}
        )
        result.failure_hints = sorted(set(hints))
        probe_a.close()
        probe_b.close()
        return result

    def _classify(
        self, target: str, capture: TrafficCapture, probe_ips: set[str]
    ) -> ConfirmationResult:
        report = classify_capture(capture, infrastructure_ips=self._infrastructure_ips())
        confirmed = report.pdn_confirmed
        relay_suspected = (not confirmed and report.turn_activity) or (
            confirmed and not (report.observed_peer_ips & probe_ips)
        )
        return ConfirmationResult(
            target=target,
            confirmed=confirmed,
            report=report,
            relay_suspected=relay_suspected,
        )
