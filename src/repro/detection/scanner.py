"""Signature-based scanners for websites and APKs.

The website scanner is the Selenium crawler of §III-C: it fetches a
site's landing page over HTTP, requires a ``<video>`` tag, then walks
same-site links to depth 3 until a signature fires. The APK scanner
unpacks versions and matches namespaces, manifest keys, and embedded
strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.signatures import (
    GENERIC_WEBRTC_SIGNATURES,
    Signature,
    SignatureKind,
    extract_api_keys,
    provider_signatures,
)
from repro.streaming.http import HttpClient, UrlSpace
from repro.web.apk import AndroidApp


@dataclass
class ScanResult:
    """Outcome of scanning one website or app."""

    target: str  # domain or package name
    matched: list[Signature] = field(default_factory=list)
    extracted_keys: set[str] = field(default_factory=set)
    pages_scanned: int = 0
    pdn_apk_versions: int = 0
    total_apk_versions: int = 0

    @property
    def is_potential(self) -> bool:
        """Whether any signature fired — the paper's 'potential customer' stage."""
        return bool(self.matched)

    @property
    def providers(self) -> set[str]:
        """Names of every provider with at least one matching signature."""
        return {s.provider for s in self.matched}

    def provider(self) -> str | None:
        """The single best provider attribution (specific beats generic)."""
        specific = [p for p in self.providers if p != "webrtc-generic"]
        if specific:
            return sorted(specific)[0]
        return "webrtc-generic" if self.providers else None

    def to_dict(self) -> dict:
        """Canonical JSON form — round-trips through :meth:`from_dict`."""
        return {
            "target": self.target,
            "matched": [
                {"kind": s.kind.value, "pattern": s.pattern, "provider": s.provider}
                for s in self.matched
            ],
            "extracted_keys": sorted(self.extracted_keys),
            "pages_scanned": self.pages_scanned,
            "pdn_apk_versions": self.pdn_apk_versions,
            "total_apk_versions": self.total_apk_versions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanResult":
        """Rebuild a persisted scan (the shard-resume load path)."""
        return cls(
            target=data["target"],
            matched=[
                Signature(SignatureKind(s["kind"]), s["pattern"], s["provider"])
                for s in data["matched"]
            ],
            extracted_keys=set(data["extracted_keys"]),
            pages_scanned=data["pages_scanned"],
            pdn_apk_versions=data["pdn_apk_versions"],
            total_apk_versions=data["total_apk_versions"],
        )


class WebsiteScanner:
    """Crawls one site at a time, depth-limited, signature-matching."""

    def __init__(
        self,
        urlspace: UrlSpace,
        max_depth: int = 3,
        max_pages: int = 50,
        include_generic: bool = True,
        signatures: list[Signature] | None = None,
    ) -> None:
        self.urlspace = urlspace
        self.max_depth = max_depth
        self.max_pages = max_pages
        # Callers that scan many sites pass one precompiled list so the
        # combined signature set is built once per run, not per scanner.
        if signatures is not None:
            self.signatures = signatures
        else:
            self.signatures = provider_signatures() + (
                GENERIC_WEBRTC_SIGNATURES if include_generic else []
            )
        self.sites_scanned = 0
        self.pages_fetched = 0

    def scan(self, domain: str) -> ScanResult:
        """Crawl ``domain`` and return signature matches + extracted keys."""
        self.sites_scanned += 1
        result = ScanResult(target=domain)
        http = HttpClient(self.urlspace, client_ip="198.18.0.1")  # scanner vantage
        landing = http.get(f"https://{domain}/")
        self.pages_fetched += 1
        if not landing.ok:
            return result
        landing_html = landing.body.decode(errors="replace")
        if "<video" not in landing_html:
            return result  # paper rule: only crawl sites with a video tag
        queue: list[tuple[str, int, str]] = [("/", 0, landing_html)]
        seen = {"/"}
        while queue and result.pages_scanned < self.max_pages:
            path, depth, html = queue.pop(0)
            result.pages_scanned += 1
            self._match_page(html, result)
            if result.matched:
                break  # paper: traverse until a signature is found
            if depth >= self.max_depth:
                continue
            for link in _extract_links(html):
                if link not in seen:
                    seen.add(link)
                    response = http.get(f"https://{domain}{link}")
                    self.pages_fetched += 1
                    if response.ok:
                        queue.append((link, depth + 1, response.body.decode(errors="replace")))
        return result

    def _match_page(self, html: str, result: ScanResult) -> None:
        for signature in self.signatures:
            if signature.kind in (SignatureKind.URL_PATTERN, SignatureKind.CONTENT):
                if signature.matches(html) and signature not in result.matched:
                    result.matched.append(signature)
        result.extracted_keys.update(extract_api_keys(html))


def _extract_links(html: str) -> list[str]:
    """Same-site hrefs, in document order."""
    links = []
    for chunk in html.split('href="')[1:]:
        target = chunk.split('"', 1)[0]
        if target.startswith("/"):
            links.append(target)
    return links


class ApkScanner:
    """Unpacks APK versions and matches Android-side signatures."""

    def __init__(self) -> None:
        self.signatures = provider_signatures()
        self.apps_scanned = 0

    def scan(self, app: AndroidApp) -> ScanResult:
        """Match every version of ``app``; aggregate hits and extracted keys."""
        self.apps_scanned += 1
        result = ScanResult(target=app.package_name)
        result.total_apk_versions = len(app.versions)
        for version in app.versions:
            version_hit = False
            for signature in self.signatures:
                if signature.kind is SignatureKind.NAMESPACE:
                    hit = version.contains_namespace(signature.pattern)
                elif signature.kind is SignatureKind.MANIFEST_KEY:
                    hit = signature.pattern in version.manifest_metadata
                else:  # URL patterns match embedded string constants
                    hit = any(signature.matches(s) for s in version.all_strings())
                if hit:
                    version_hit = True
                    if signature not in result.matched:
                        result.matched.append(signature)
            if version_hit:
                result.pdn_apk_versions += 1
                for value in version.all_strings():
                    result.extracted_keys.update(extract_api_keys(value))
                    # Manifest metadata values are the keys themselves.
                for meta_value in version.manifest_metadata.values():
                    if len(meta_value) >= 8 and all(c in "0123456789abcdef" for c in meta_value):
                        result.extracted_keys.add(meta_value)
        return result
