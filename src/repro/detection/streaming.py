"""The streaming detection driver: sharded, parallel, resumable.

:class:`StreamingDetectionPipeline` runs the §III-C methodology of
:class:`~repro.detection.pipeline.DetectionPipeline` without ever
materialising the whole corpus:

1. **Scan phase** — the corpus plan is split into ``--shards`` strided
   :class:`~repro.web.corpus.CorpusShard` slices; each shard streams
   ``GenerateShard → CategorizeAndSearch → SignatureScan`` in its own
   :class:`~repro.environment.Environment` built from the experiment
   seed, optionally across a process pool
   (:func:`~repro.harness.runner.pool_map`). Sites materialise one at a
   time and are released after scanning, so a shard's resident set is
   the ground-truth population plus one site — independent of corpus
   size.
2. **Merge** — shard states reduce via a sorted canonical merge
   (:func:`merge_shard_states`): gather, sort by key, join. The merged
   state — and therefore every digest downstream — is identical for any
   ``--shards``/``--jobs`` decomposition.
3. **Confirm phase** — dynamic confirmation candidates are all ground
   truth, so the driver rebuilds only the ground corpus in a fresh
   seeded environment and replays the monolithic pipeline's exact
   confirmation order (sorted potential sites, sorted potential apps,
   top-10K probe list).

With ``--resume DIR`` every completed shard's state is persisted as
JSON next to a run manifest pinning its digest; a re-run loads those
shards instead of re-executing them, which is what makes a 3M-domain
scan interruptible.

A resume may also *upgrade* the shard count: shards are strided slices,
so completed shard ``i`` of ``N`` covers exactly the spec indices of
the new shards ``j ≡ i (mod N)`` whenever the new count is a multiple
of ``N`` — and :func:`merge_shard_states` is decomposition-invariant,
so coarse and fine states merge to the same result. The manifest keeps
upgraded states at their original granularity (a scanned state cannot
be subdivided without re-scanning) and only the uncovered new shards
execute. Any other identity change — different seed, different corpus
config, a shard count that does not evenly subdivide every completed
granularity — still hard-fails, naming the offending field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path

from repro.detection.pipeline import PipelineReport, combined_signatures
from repro.detection.stages import (
    AppItem,
    CategorizeAndSearch,
    ConfirmDynamic,
    GenerateShard,
    Report,
    ShardScanState,
    SignatureScan,
    SiteItem,
    run_stages,
)
from repro.environment import Environment
from repro.harness.result import content_digest, to_jsonable
from repro.harness.runner import pool_map
from repro.util.errors import ConfigurationError
from repro.web.corpus import Corpus, CorpusBuilder, CorpusConfig, CorpusPlan, build_ground_corpus

MANIFEST_FILE = "manifest.json"
MANIFEST_VERSION = 2


class ScanIncomplete(RuntimeError):
    """Raised when a bounded run stops before every shard is scanned.

    The run directory already holds the completed shards; re-running
    with the same ``--resume DIR`` picks up from here.
    """

    def __init__(self, completed: int, total: int, run_dir: Path) -> None:
        super().__init__(
            f"scan incomplete: {completed}/{total} shards done; "
            f"re-run with --resume {run_dir} to continue"
        )
        self.completed = completed
        self.total = total
        self.run_dir = run_dir


def scan_shard(task: tuple) -> ShardScanState:
    """Scan one corpus shard; the process-pool unit of work.

    Top-level and tuple-driven so :func:`pool_map` can ship it to
    workers. Everything is re-derived from ``(seed, config, index,
    count)`` — workers share no state, and because every spec
    materialises from named RNG forks of the same seed, the state this
    returns is a pure function of the task tuple.
    """
    seed, config, index, count = task
    env = Environment(seed=seed)
    builder = CorpusBuilder(env, config=config, with_videos=False)
    shard = builder.plan.shard(index, count)
    signatures = combined_signatures()
    generate = GenerateShard(builder)
    categorize = CategorizeAndSearch(env, signatures)
    scan = SignatureScan(env.urlspace, signatures)
    run_stages(chain(shard.site_specs(), shard.app_specs()), generate, [categorize, scan])
    return ShardScanState.collect(shard, generate, categorize, scan)


def merge_shard_states(states: list[ShardScanState]) -> ShardScanState:
    """Sorted canonical reduction of disjoint shard states.

    Counters sum; maps and sets union, then sort by key. Input order is
    irrelevant — any shard decomposition of the same plan merges to the
    same state (shards cover disjoint spec indices, so key collisions
    are a corruption signal, not a tie to break).
    """
    if not states:
        raise ValueError("cannot merge zero shard states")
    # The merged state is not a shard: neutral identity, so its digest
    # (and everything derived from it) is invariant in the shard count.
    merged = ShardScanState(shard_index=-1, shard_count=0)
    site_scans: list = []
    app_scans: list = []
    for state in states:
        merged.sites_generated += state.sites_generated
        merged.apps_generated += state.apps_generated
        merged.sites_dropped += state.sites_dropped
        merged.video_related_scanned += state.video_related_scanned
        merged.pages_fetched += state.pages_fetched
        site_scans.extend(state.site_scans.items())
        app_scans.extend(state.app_scans.items())
        merged.extracted_keys.update(state.extracted_keys)
        merged.source_search_hits.update(state.source_search_hits)
        merged.generic_webrtc_sites.extend(state.generic_webrtc_sites)
    for label, pairs in (("site", site_scans), ("app", app_scans)):
        keys = [k for k, _ in pairs]
        if len(keys) != len(set(keys)):
            raise ConfigurationError(f"overlapping shards: duplicate {label} scans in merge")
    merged.site_scans = dict(sorted(site_scans))
    merged.app_scans = dict(sorted(app_scans))
    merged.generic_webrtc_sites = sorted(merged.generic_webrtc_sites)
    return merged


@dataclass
class StreamManifest:
    """``manifest.json`` in a ``--resume`` run directory.

    Pins the run identity (seed, shard count, config digest) and one
    content digest per completed shard; shard states live next to it as
    ``shard-NNNN.json``. A digest mismatch on load — a truncated or
    hand-edited file — quarantines just that shard for re-scan.

    After a shard-count *upgrade* (see the module docstring) the states
    completed under a previous, coarser count survive as ``coarse``
    blocks: ``(old_count, {old_index: digest})``, their files renamed to
    ``shard-NNNN-of-{old_count}.json`` so the new granularity's plain
    names never collide with them.
    """

    run_dir: Path
    seed: int | str
    shards: int
    config_digest: str
    completed: dict[int, str] = field(default_factory=dict)
    coarse: list[tuple[int, dict[int, str]]] = field(default_factory=list)
    result_digest: str | None = None

    @property
    def path(self) -> Path:
        """Path of the manifest file itself."""
        return self.run_dir / MANIFEST_FILE

    def shard_path(self, index: int, count: int | None = None) -> Path:
        """Path of one shard's persisted state.

        ``count`` names a coarse granularity from before an upgrade;
        ``None`` (or the current count) is the plain current-run name.
        """
        if count is None or count == self.shards:
            return self.run_dir / f"shard-{index:04d}.json"
        return self.run_dir / f"shard-{index:04d}-of-{count}.json"

    @classmethod
    def open(
        cls, run_dir: Path, seed: int | str, shards: int, config_digest: str
    ) -> "StreamManifest":
        """Load the manifest in ``run_dir``, or start a fresh one.

        Resuming under different run parameters would stitch shards from
        two different corpora together, so an identity mismatch is an
        error naming the offending field rather than a silent restart.
        One mismatch is legal: a ``shards`` *upgrade* to a multiple of
        every completed granularity, which re-files the completed states
        as coarse blocks and carries on (strided shards make a coarse
        shard exactly a union of new ones).
        """
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest = cls(run_dir=run_dir, seed=seed, shards=shards, config_digest=config_digest)
        if not manifest.path.exists():
            return manifest
        data = json.loads(manifest.path.read_text())
        for name, want in (("seed", seed), ("config_digest", config_digest)):
            if data.get(name) != want:
                raise ConfigurationError(
                    f"resume mismatch in {manifest.path}: {name}={data.get(name)!r}, "
                    f"this run has {want!r}"
                )
        completed = {int(k): v for k, v in data.get("completed", {}).items()}
        coarse = [
            (int(block["shards"]),
             {int(k): v for k, v in block["completed"].items()})
            for block in data.get("coarse", [])
        ]
        old_shards = data.get("shards")
        if old_shards == shards:
            manifest.completed = completed
            manifest.coarse = coarse
            manifest.result_digest = data.get("result_digest")
            return manifest
        upgradable = (
            isinstance(old_shards, int)
            and old_shards > 0
            and shards % old_shards == 0
            and shards > old_shards
            and all(shards % count == 0 for count, _ in coarse)
        )
        if not upgradable:
            raise ConfigurationError(
                f"resume mismatch in {manifest.path}: shards={old_shards!r}, this run "
                f"has {shards!r} — only an upgrade to a multiple of every completed "
                f"shard granularity can reuse this run directory"
            )
        # Upgrade: demote the previous granularity's states to a coarse
        # block (renaming their files out of the new namespace) and
        # restart the completion ledger at the new granularity. The
        # result digest is recomputed by the run that finishes coverage.
        if completed:
            for index in completed:
                src = run_dir / f"shard-{index:04d}.json"
                if src.exists():
                    src.rename(manifest.shard_path(index, old_shards))
            coarse.append((old_shards, completed))
        manifest.coarse = coarse
        manifest.result_digest = None
        manifest.save()
        return manifest

    def save(self) -> None:
        """Write the manifest JSON (atomic enough: tiny, single write)."""
        payload = {
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "shards": self.shards,
            "config_digest": self.config_digest,
            "completed": {str(k): v for k, v in sorted(self.completed.items())},
            "result_digest": self.result_digest,
        }
        if self.coarse:
            payload["coarse"] = [
                {"shards": count,
                 "completed": {str(k): v for k, v in sorted(done.items())}}
                for count, done in self.coarse
            ]
        self.path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def record(self, state: ShardScanState) -> None:
        """Persist one completed shard state and pin its digest."""
        self.shard_path(state.shard_index).write_text(
            json.dumps(state.to_dict(), sort_keys=True) + "\n"
        )
        self.completed[state.shard_index] = state.content_digest()
        self.save()

    def _load_state(self, path: Path, digest: str) -> ShardScanState | None:
        """Load one pinned state file; ``None`` on a missing/failed pin."""
        if not path.exists():
            return None
        state = ShardScanState.from_dict(json.loads(path.read_text()))
        if state.content_digest() != digest:
            return None
        return state

    def load_states(self) -> tuple[list[ShardScanState], set[int], list[int]]:
        """Load completed shard states, dropping any that fail their pin.

        Returns ``(states, covered, stale)``. ``states`` may mix
        granularities after an upgrade; ``covered`` is the set of
        *current-granularity* shard indices they account for — a coarse
        shard ``i`` of ``count`` covers every current index ``j ≡ i
        (mod count)``. ``stale`` lists the dropped entries (as current
        indices, or ``(count, index)`` for coarse ones); their coverage
        simply re-scans at the current granularity.
        """
        states: list[ShardScanState] = []
        covered: set[int] = set()
        stale: list = []
        for index, digest in sorted(self.completed.items()):
            state = self._load_state(self.shard_path(index), digest)
            if state is None:
                stale.append(index)
                self.completed.pop(index)
                continue
            states.append(state)
            covered.add(index)
        for count, done in self.coarse:
            for index, digest in sorted(done.items()):
                state = self._load_state(self.shard_path(index, count), digest)
                if state is None:
                    stale.append((count, index))
                    done.pop(index)
                    continue
                states.append(state)
                covered.update(range(index, self.shards, count))
        self.coarse = [(count, done) for count, done in self.coarse if done]
        return states, covered, stale


@dataclass
class StreamOutcome:
    """What one streaming run produced."""

    report: PipelineReport
    corpus: Corpus | None
    merged: ShardScanState
    shards_executed: list[int]
    shards_loaded: list[int]


class StreamingDetectionPipeline:
    """Composes the streaming stages over a sharded corpus plan."""

    def __init__(
        self,
        seed: int | str,
        config: CorpusConfig | None = None,
        shards: int = 1,
        scan_jobs: int = 1,
        resume_dir: Path | str | None = None,
        watch_seconds: float = 40.0,
        probe_country: str = "US",
        confirm: bool = True,
        max_shards: int | None = None,
    ) -> None:
        self.seed = seed
        self.config = config or CorpusConfig()
        self.shards = max(1, shards)
        self.scan_jobs = max(1, scan_jobs)
        self.resume_dir = Path(resume_dir) if resume_dir else None
        self.watch_seconds = watch_seconds
        self.probe_country = probe_country
        self.confirm = confirm
        self.max_shards = max_shards
        self.plan = CorpusPlan(self.config)

    def _config_digest(self) -> str:
        return content_digest(to_jsonable(self.config))

    def run(self) -> StreamOutcome:
        """Execute scan + merge + confirm; raises ScanIncomplete if bounded."""
        states, executed, loaded = self._scan_phase()
        merged = merge_shard_states(states)
        report = Report(self.config).process(merged)[0]
        corpus = None
        if self.confirm:
            corpus = self._confirm_phase(report)
        if self.resume_dir is not None:
            manifest = self._manifest()
            manifest.result_digest = report.content_digest()
            manifest.save()
        return StreamOutcome(
            report=report, corpus=corpus, merged=merged,
            shards_executed=executed, shards_loaded=loaded,
        )

    # -- scan phase -------------------------------------------------------

    def _manifest(self) -> StreamManifest:
        assert self.resume_dir is not None
        return StreamManifest.open(
            self.resume_dir, seed=self.seed, shards=self.shards,
            config_digest=self._config_digest(),
        )

    def _scan_phase(self) -> tuple[list[ShardScanState], list[int], list[int]]:
        manifest = self._manifest() if self.resume_dir is not None else None
        states: list[ShardScanState] = []
        covered: set[int] = set()
        if manifest is not None:
            states, covered, _stale = manifest.load_states()
        loaded = sorted(covered)
        pending = [i for i in range(self.shards) if i not in covered]
        if self.max_shards is not None:
            pending = pending[: self.max_shards]
        tasks = [(self.seed, self.config, index, self.shards) for index in pending]
        for state in pool_map(scan_shard, tasks, jobs=self.scan_jobs):
            states.append(state)
            covered.add(state.shard_index)
            if manifest is not None:
                manifest.record(state)
        if len(covered) < self.shards:
            where = self.resume_dir if self.resume_dir is not None else Path(".")
            raise ScanIncomplete(len(covered), self.shards, where)
        return states, pending, loaded

    # -- confirm phase ----------------------------------------------------

    def _confirm_phase(self, report: PipelineReport) -> Corpus:
        """Replay the monolithic confirmation order over a ground corpus.

        Corpus construction draws nothing from the environment's
        sequential streams, so a fresh seeded environment holding just
        the ground truth enters confirmation in the same state as the
        monolithic run's — noise sites are never candidates and need not
        exist.
        """
        env = Environment(seed=self.seed)
        corpus = build_ground_corpus(env, self.config)
        confirmer = ConfirmDynamic(
            env, watch_seconds=self.watch_seconds, probe_country=self.probe_country
        )
        for domain in report.potential_sites():
            site = corpus.website(domain)
            if site is not None:
                spec = self.plan.site_spec_for(domain)
                report.site_confirmations[domain] = confirmer.process(SiteItem(spec, site))[0]
        for package in report.potential_apps():
            app = corpus.app(package)
            if app is not None:
                spec = self.plan.app_spec_for(package)
                report.app_confirmations[package] = confirmer.process(AppItem(spec, app))[0]
        prober = ConfirmDynamic(
            env, watch_seconds=self.watch_seconds, probe_country=self.probe_country
        )
        for domain in corpus.top10k_webrtc_domains:
            site = corpus.website(domain)
            if site is None:
                continue
            result = prober.process(SiteItem(self.plan.site_spec_for(domain), site))[0]
            report.private_confirmations[domain] = result
            if result.relay_suspected:
                report.relay_sites.append(domain)
        return corpus
