"""The PDN customer detection framework (§III-C).

Two stages, exactly as in the paper:

1. **Signature scan** — crawl candidate websites (depth ≤ 3, only sites
   with a ``<video>`` tag) and unpack APKs, matching provider signatures
   (SDK URL patterns, Android namespaces, manifest metadata keys) plus
   generic WebRTC signatures for private services. Matches become
   *potential PDN customers*; API keys are extracted by regex where not
   obfuscated.
2. **Dynamic confirmation** — run the potential customer with probe
   viewers, capture traffic, and look for STUN binding requests followed
   by a DTLS handshake between candidate peer pairs. Successes become
   *confirmed PDN customers*.

Two drivers execute this methodology: the classic monolithic
:class:`~repro.detection.pipeline.DetectionPipeline` over a fully
materialised corpus, and the sharded, resumable
:class:`~repro.detection.streaming.StreamingDetectionPipeline` over
composable :mod:`~repro.detection.stages` — bit-identical reports,
bounded memory (see docs/DETECTION.md).
"""

from repro.detection.signatures import (
    GENERIC_WEBRTC_SIGNATURES,
    Signature,
    SignatureKind,
    provider_signatures,
)
from repro.detection.categorize import CategoryEngine, default_engines, is_video_related
from repro.detection.scanner import ApkScanner, ScanResult, WebsiteScanner
from repro.detection.traffic import PdnTrafficReport, classify_capture
from repro.detection.dynamic import DynamicConfirmer
from repro.detection.pipeline import DetectionPipeline, PipelineReport, combined_signatures
from repro.detection.stages import (
    AppItem,
    CategorizeAndSearch,
    ConfirmDynamic,
    GenerateShard,
    Report,
    ShardScanState,
    SignatureScan,
    SiteItem,
    Stage,
)
from repro.detection.streaming import (
    ScanIncomplete,
    StreamingDetectionPipeline,
    StreamManifest,
    StreamOutcome,
    merge_shard_states,
    scan_shard,
)

__all__ = [
    "GENERIC_WEBRTC_SIGNATURES",
    "Signature",
    "SignatureKind",
    "provider_signatures",
    "CategoryEngine",
    "default_engines",
    "is_video_related",
    "ApkScanner",
    "ScanResult",
    "WebsiteScanner",
    "PdnTrafficReport",
    "classify_capture",
    "DynamicConfirmer",
    "DetectionPipeline",
    "PipelineReport",
    "combined_signatures",
    "Stage",
    "SiteItem",
    "AppItem",
    "GenerateShard",
    "CategorizeAndSearch",
    "SignatureScan",
    "ConfirmDynamic",
    "Report",
    "ShardScanState",
    "StreamingDetectionPipeline",
    "StreamManifest",
    "StreamOutcome",
    "ScanIncomplete",
    "scan_shard",
    "merge_shard_states",
]
