"""The datagram network: hosts, sockets, routing, latency, loss.

The network routes by *public* address: each routable IP belongs either
to a public :class:`Host` or to a :class:`~repro.net.nat.NatBox` whose
attached hosts carry private addresses. Sending through the network
performs NAT translation, captures the wire-level packet for every
interested :class:`~repro.net.capture.TrafficCapture`, applies loss,
and schedules delivery on the event loop after a latency drawn from the
region-aware latency model.

This is the simulator's data plane and must stay fast and
memory-bounded at million-datagram scale: wire capture objects are only
built when a capture is registered, per-region-pair base latencies are
cached, per-packet classes use ``__slots__``, and socket inboxes are
ring buffers (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import itertools
from array import array
from typing import Callable

from repro.net.addresses import Endpoint, int_to_ip, ip_to_int
from repro.net.capture import CapturedPacket, TrafficCapture
from repro.net.clock import EventLoop
from repro.net.nat import NatBox, NatType
from repro.util.errors import AddressInUseError, ConfigurationError, NetworkError
from repro.util.rand import DeterministicRandom

DatagramHandler = Callable[[bytes, Endpoint, "UdpSocket"], None]

#: Default :attr:`UdpSocket.inbox` ring-buffer capacity. Handlers are the
#: production delivery path; the inbox exists so tests can poll without
#: wiring callbacks, and a bounded ring keeps long swarm runs from
#: accumulating every datagram ever delivered. Pass ``inbox_limit=None``
#: to :meth:`Host.bind_udp` for an unbounded inbox.
DEFAULT_INBOX_LIMIT = 4096

#: Auto-retune cadence: the send path checks wheel health every this
#: many datagrams (a power of two, so the hot-path check is one mask).
#: The *first* boundary doubles as end-of-warm-up — the wheel narrows
#: unconditionally from the constructor's worst-case band to the
#: latency classes the first 8192 sends actually used.
AUTO_RETUNE_CHECK_INTERVAL = 8192

#: Re-derive the wheel geometry when more than this share of entries
#: scheduled since the previous check overflowed to the heap. A healthy
#: swarm overflows ~never (see ``docs/PERFORMANCE.md``); a quarter of
#: traffic falling out of band means the geometry no longer matches
#: the latency band (a knob changed, or fault impairments stretched
#: delays) and a retune is cheaper than sustained heap sifts.
AUTO_RETUNE_OVERFLOW_SHARE = 0.25


class UdpSocket:
    """A bound UDP port on a host.

    Incoming datagrams are passed to ``handler(payload, src, socket)``
    when one is set, and always appended to :attr:`inbox` so tests can
    poll without wiring callbacks. The inbox is bounded at
    ``inbox_limit`` entries — once full, the oldest half is evicted in
    one batch (amortised O(1), and a plain list stays ~10x smaller per
    idle socket than a deque ring). ``None`` disables the cap.
    """

    __slots__ = ("host", "port", "handler", "inbox", "closed",
                 "bytes_sent", "bytes_received", "inbox_limit", "_net_send",
                 "_wire_src")

    def __init__(
        self,
        host: "Host",
        port: int,
        handler: DatagramHandler | None = None,
        inbox_limit: int | None = DEFAULT_INBOX_LIMIT,
    ) -> None:
        self.host = host
        self.port = port
        self.handler = handler
        self.inbox: list[tuple[bytes, Endpoint]] = []
        self.inbox_limit = inbox_limit
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        # Pre-bound data-plane entry point: send() is per-datagram hot.
        self._net_send = host.network.send_datagram
        # Public hosts have one fixed wire-source endpoint per port, so
        # the socket resolves it once at bind time and send() skips the
        # per-datagram lookup. NATed sockets pass None: their wire
        # source depends on the destination (NAT outbound mapping).
        if host.nat is None:
            wire = host._wire_endpoints.get(port)
            if wire is None:
                wire = Endpoint(host.ip, port)
                host._wire_endpoints[port] = wire
            self._wire_src: Endpoint | None = wire
        else:
            self._wire_src = None

    @property
    def endpoint(self) -> Endpoint:
        """The socket's local (possibly private) address."""
        return Endpoint(self.host.ip, self.port)

    def send(self, dst: Endpoint, payload: bytes) -> None:
        """Send."""
        if self.closed:
            raise NetworkError(f"socket {self.endpoint} is closed")
        self.bytes_sent += len(payload)
        self._net_send(self.host, self.port, dst, payload, self._wire_src)

    def deliver(self, payload: bytes, src: Endpoint) -> None:
        """Push a message to the attached client, if any."""
        if self.closed:
            return
        self.push(payload, src)
        if self.handler is not None:
            self.handler(payload, src, self)

    def push(self, payload: bytes, src: Endpoint) -> None:
        """Count the bytes and append to the inbox ring (no handler).

        The one shared append/eviction implementation: :meth:`deliver`,
        ``Network._deliver`` and the batched drain all funnel through
        here, so the ring semantics — evict the oldest half in one
        batch ``del`` once past the cap — cannot drift between call
        sites. Handler dispatch stays with the callers: the batched
        drain must flush its accounting before re-entrant handler code
        runs, so this helper deliberately stops at the inbox.
        """
        self.bytes_received += len(payload)
        inbox = self.inbox
        inbox.append((payload, src))
        limit = self.inbox_limit
        if limit is not None and len(inbox) > limit:
            del inbox[: len(inbox) - limit // 2]

    def close(self) -> None:
        """Close and release resources."""
        self.closed = True
        self.host.release_port(self.port)


class Host:
    """A machine on the network, optionally behind a NAT."""

    __slots__ = ("network", "name", "ip", "nat", "region",
                 "uplink_bytes_per_sec", "_uplink_busy_until",
                 "sockets", "_ephemeral", "_wire_endpoints")

    def __init__(
        self,
        network: "Network",
        name: str,
        ip: str,
        nat: NatBox | None = None,
        region: str | None = None,
        uplink_bytes_per_sec: float | None = None,
    ) -> None:
        self.network = network
        self.name = name
        self.ip = ip
        self.nat = nat
        self.region = region
        # Residential uplinks are finite; None = unconstrained (the
        # default, matching the original latency-only model).
        self.uplink_bytes_per_sec = uplink_bytes_per_sec
        self._uplink_busy_until = 0.0
        self.sockets: dict[int, UdpSocket] = {}
        self._ephemeral = itertools.count(10000)
        # port -> wire-source Endpoint, for non-NATed sends. A host's own
        # ip never changes (NAT rebinds move the *external* address), so
        # entries stay valid across rebinds and never need invalidation.
        self._wire_endpoints: dict[int, Endpoint] = {}

    @property
    def public_ip(self) -> str:
        """The address the rest of the Internet sees for this host."""
        return self.nat.external_ip if self.nat else self.ip

    def bind_udp(
        self,
        port: int = 0,
        handler: DatagramHandler | None = None,
        inbox_limit: int | None = DEFAULT_INBOX_LIMIT,
    ) -> UdpSocket:
        """Bind a UDP socket; port 0 picks a free ephemeral port."""
        if port == 0:
            port = next(self._ephemeral)
            while port in self.sockets:
                port = next(self._ephemeral)
        if port in self.sockets:
            raise AddressInUseError(f"{self.name}: port {port} already bound")
        sock = UdpSocket(self, port, handler, inbox_limit=inbox_limit)
        self.sockets[port] = sock
        return sock

    def release_port(self, port: int) -> None:
        """Release port."""
        self.sockets.pop(port, None)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Host({self.name}, {self.ip}, nat={self.nat is not None})"


class Network:
    """The simulated Internet."""

    def __init__(
        self,
        loop: EventLoop | None = None,
        rand: DeterministicRandom | None = None,
        base_latency: float = 0.02,
        cross_region_latency: float = 0.12,
        jitter: float = 0.004,
        loss_rate: float = 0.0,
    ) -> None:
        self.loop = loop or EventLoop()
        self.rand = (rand or DeterministicRandom(0)).fork("network")
        # (src_region, dst_region) -> base one-way latency; cleared when
        # either latency knob is assigned (see the property setters).
        # The hot send path bypasses this cache (a direct region compare
        # is cheaper than the key tuple it would allocate) and records
        # the band it observed in _saw_cross_region instead.
        self._latency_base: dict[tuple[str | None, str | None], float] = {}
        self._saw_cross_region = False
        # Direct assignment (not the property setters): the setters
        # retune the loop's timing wheel, which wants every latency knob
        # in place first — one _tune_wheel() call below covers them all.
        self._base_latency = base_latency
        self._cross_region_latency = cross_region_latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.hosts: dict[str, Host] = {}  # keyed by the host's own ip
        self._routable: dict[str, Host | NatBox] = {}  # public address space
        self.captures: list[TrafficCapture] = []
        self._next_public_ip = ip_to_int("5.0.0.1")
        self._next_nat_subnet = itertools.count(1)
        self.datagrams_sent = 0
        #: Auto-retune state: enabled by default; ``_retune_mark`` holds
        #: the (scheduled, overflow) counters at the previous check so
        #: the overflow share is computed per window, not cumulatively.
        self.auto_retune = True
        self._retune_warmed = False
        self._retune_mark = (0, 0)
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        self.datagrams_in_flight = 0
        #: Datagrams dropped *after* capture time. ``send_datagram``
        #: records each :class:`CapturedPacket` with the outcome known
        #: at send — but ``host_down``/``no_socket``/``socket_closed``
        #: are decided at delivery, once every registered capture has
        #: already seen ``dropped=False``. Captures reconcile their
        #: delivered totals by subtracting this counter (see
        #: ``tests/chaos/test_capture_reconciliation.py``).
        self.in_flight_drops = 0
        self.drops_by_reason: dict[str, int] = {}
        #: Batched delivery: in-band datagrams append into the loop's
        #: per-slot column rings and one drain frame fires each
        #: contiguous due run (:meth:`EventLoop.set_datagram_plane`).
        #: ``False`` falls back to one classic 4-tuple entry per
        #: datagram — dispatch order is bit-identical either way
        #: (``tests/chaos/test_batched_delivery.py`` proves it).
        self.batch_delivery = True
        # Installed by repro.net.faults.FaultInjector; None = no chaos.
        self.faults = None
        # Pre-bound delivery callback: send_datagram schedules one of
        # these per datagram, and a cached bound method avoids a fresh
        # method object per send. _rand_random is the raw C-level draw
        # behind self.rand, for the inline jitter computation.
        self._deliver_cb = self._deliver
        self._rand_random = self.rand.random
        self.loop.set_datagram_plane(self._drain_cursor, self._deliver_cb)
        self._tune_wheel()

    # -- latency model knobs ---------------------------------------------

    # Both knobs are settable mid-run (experiments tune them after
    # construction), so the setters invalidate the region-pair cache and
    # re-derive the timing wheel's bucket geometry from the new band.

    @property
    def base_latency(self) -> float:
        """Same-region one-way base latency in seconds."""
        return self._base_latency

    @base_latency.setter
    def base_latency(self, value: float) -> None:
        self._base_latency = value
        self._latency_base.clear()
        self._tune_wheel()

    @property
    def cross_region_latency(self) -> float:
        """Cross-region one-way base latency in seconds."""
        return self._cross_region_latency

    @cross_region_latency.setter
    def cross_region_latency(self, value: float) -> None:
        self._cross_region_latency = value
        self._latency_base.clear()
        self._tune_wheel()

    def _tune_wheel(self) -> None:
        """Size the loop's timing wheel from the latency model's band.

        The in-flight-datagram delay band runs from the 1 ms floor up to
        the largest per-region base latency plus folded jitter. Observed
        traffic narrows it: once any datagram has been scheduled, the
        band covers only the latency classes actually used — the
        region-pair cache (filled by :meth:`latency_between`) and the
        send path's cross-region flag — so an all-same-region swarm gets
        same-region-sized buckets. Before any traffic the knobs bound
        the band. Reconfiguring mid-run is order-safe (see
        :meth:`~repro.net.clock.EventLoop.configure_wheel`).
        """
        observed = self._latency_base
        if self._saw_cross_region:
            band = max(self._base_latency, self._cross_region_latency)
        elif self.datagrams_sent or observed:
            band = max(self._base_latency,
                       max(observed.values()) if observed else 0.0)
        else:
            band = max(self._base_latency, self._cross_region_latency)
        self.loop.configure_wheel_for_band(band + self.jitter)

    def retune_wheel(self) -> None:
        """Re-derive the wheel geometry from the observed latency band.

        Call after warm-up traffic to tighten the bucket width to the
        delay band this topology actually uses (an all-same-region
        swarm gets ~6x finer buckets than the cross-region worst case
        the constructor assumes). The send path also invokes this
        automatically at deterministic datagram-count boundaries — see
        :data:`AUTO_RETUNE_CHECK_INTERVAL` / :meth:`_auto_retune_check`;
        set :attr:`auto_retune` to ``False`` to manage geometry manually.
        """
        self._tune_wheel()

    def _auto_retune_check(self) -> None:
        """Periodic wheel-health check, hit every ``AUTO_RETUNE_CHECK_INTERVAL`` sends.

        Trigger points are datagram-count boundaries, so they land at
        identical simulation moments on every run of a seed — retuning
        is order-safe (:meth:`~repro.net.clock.EventLoop.configure_wheel`
        preserves dispatch order), and deterministic triggers keep even
        the wheel *counters* replayable. The first boundary retunes
        unconditionally (end of warm-up); later boundaries only when
        the per-window overflow share crosses
        :data:`AUTO_RETUNE_OVERFLOW_SHARE`. A deliberately disabled
        wheel (``configure_wheel(None, 0)``) is left alone.
        """
        loop = self.loop
        if not self.auto_retune or not loop._wheel_slots:
            return
        scheduled, overflow = loop.wheel_scheduled, loop.wheel_overflow
        window_scheduled = scheduled - self._retune_mark[0]
        window_overflow = overflow - self._retune_mark[1]
        self._retune_mark = (scheduled, overflow)
        if not self._retune_warmed:
            self._retune_warmed = True
            self._tune_wheel()
            return
        total = window_scheduled + window_overflow
        if total and window_overflow / total >= AUTO_RETUNE_OVERFLOW_SHARE:
            self._tune_wheel()

    # -- topology --------------------------------------------------------

    def allocate_public_ip(self) -> str:
        """Allocate public ip."""
        ip = int_to_ip(self._next_public_ip)
        self._next_public_ip += 1
        return ip

    def add_host(
        self,
        name: str,
        ip: str | None = None,
        nat: NatBox | None = None,
        region: str | None = None,
        uplink_bytes_per_sec: float | None = None,
    ) -> Host:
        """Create a host. Behind a NAT it gets a private subnet address."""
        if nat is not None:
            if ip is not None:
                raise ConfigurationError("cannot set explicit ip for a NATed host")
            ip = nat.allocate_internal_ip()
        elif ip is None:
            ip = self.allocate_public_ip()
        if ip in self.hosts:
            raise ConfigurationError(f"duplicate host ip {ip}")
        host = Host(self, name, ip, nat=nat, region=region,
                    uplink_bytes_per_sec=uplink_bytes_per_sec)
        self.hosts[ip] = host
        if nat is None:
            self._routable[ip] = host
        return host

    def add_nat(
        self,
        nat_type: NatType = NatType.PORT_RESTRICTED_CONE,
        external_ip: str | None = None,
    ) -> NatBox:
        """Create a NAT box with its own public address and subnet."""
        if external_ip is None:
            external_ip = self.allocate_public_ip()
        subnet_index = next(self._next_nat_subnet)
        subnet = f"192.168.{subnet_index % 256}" if subnet_index < 256 else (
            f"10.{subnet_index // 256}.{subnet_index % 256}"
        )
        nat = NatBox(external_ip, nat_type, subnet_prefix=subnet)
        self._routable[external_ip] = nat
        return nat

    def rebind_nat(self, nat: NatBox, new_external_ip: str | None = None) -> tuple[str, str]:
        """Give a NAT box a fresh public mapping (lease expiry / renumber).

        Returns ``(old_ip, new_ip)``. The old external address leaves
        the public address space, every existing port mapping is voided
        (established flows must re-punch), and the box reappears at the
        new address — the churn event the paper's ICE layer must survive.
        """
        if self._routable.get(nat.external_ip) is not nat:
            raise ConfigurationError(f"NAT {nat.external_ip} is not attached to this network")
        if new_external_ip is None:
            new_external_ip = self.allocate_public_ip()
        if new_external_ip in self._routable or new_external_ip in self.hosts:
            raise ConfigurationError(f"address {new_external_ip} already in use")
        old_ip = nat.external_ip
        del self._routable[old_ip]
        nat.rebind(new_external_ip)
        self._routable[new_external_ip] = nat
        return old_ip, new_external_ip

    def is_routable(self, ip: str) -> bool:
        """True when ``ip`` is claimed in the public address space.

        A routable address belongs either to a public :class:`Host` or
        to a :class:`~repro.net.nat.NatBox`'s external side. Callers
        allocating addresses (e.g. geo-located viewer hosts) use this
        to avoid collisions instead of reaching into the private
        routing table.
        """
        return ip in self._routable

    def add_capture(self, capture: TrafficCapture) -> TrafficCapture:
        """Register a traffic capture observing every sent datagram.

        The capture remembers this network as a tap point, so
        :meth:`TrafficCapture.stop` deregisters it here and the no-tap
        fast branch in :meth:`send_datagram` re-engages.
        """
        self.captures.append(capture)
        capture._taps.append(self)
        return capture

    # -- data plane ------------------------------------------------------

    def latency_between(self, src: Host, dst_region: str | None) -> float:
        """One-way latency from ``src`` to a destination region."""
        src_region = src.region
        key = (src_region, dst_region)
        cross = (src_region != dst_region
                 and src_region is not None and dst_region is not None)
        if cross:
            # Mirror of the send path's flag: a network whose only
            # cross-region traffic flows through this slow path must
            # still retune the wheel to the wide band (cache hits
            # included — the pair cache is cleared on knob changes,
            # and the band test reads the flag, not the cache).
            self._saw_cross_region = True
        base = self._latency_base.get(key)
        if base is None:
            base = self._cross_region_latency if cross else self._base_latency
            self._latency_base[key] = base
        latency = base + self.rand.uniform(-self.jitter, self.jitter)
        return latency if latency > 0.001 else 0.001

    def _drop(self, reason: str) -> None:
        """Count one dropped datagram, under exactly one reason.

        Every drop path funnels through here, so ``datagrams_dropped ==
        sum(drops_by_reason.values())`` holds by construction — the
        conservation invariant the chaos suite pins.
        """
        self.datagrams_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _resolve_destination(
        self, dst: Endpoint, wire_src: Endpoint
    ) -> tuple[Host | None, int, str | None]:
        """Route a wire destination to ``(host, port, drop_reason)``.

        Read-only (NAT ``inbound`` never mutates), so it is safe to call
        before the loss decision without perturbing the seeded stream.
        """
        target = self._routable.get(dst.ip)
        if target is None:
            # Unroutable destination (e.g. a bogon candidate): black-hole.
            return None, 0, "unroutable"
        if isinstance(target, NatBox):
            return self._resolve_nat(target, dst, wire_src)
        return target, dst.port, None

    def _resolve_nat(
        self, nat: NatBox, dst: Endpoint, wire_src: Endpoint
    ) -> tuple[Host | None, int, str | None]:
        """The NAT half of :meth:`_resolve_destination`."""
        internal = nat.inbound(dst.port, wire_src)
        if internal is None:
            return None, 0, "nat_filtered"
        dest_host = self.hosts.get(internal.ip)
        if dest_host is None:
            return None, 0, "no_host"
        return dest_host, internal.port, None

    def send_datagram(
        self,
        src_host: Host,
        src_port: int,
        dst: Endpoint,
        payload: bytes,
        wire_src: Endpoint | None = None,
    ) -> None:
        """Send one datagram. NAT-translates, captures, drops, delivers.

        ``wire_src`` lets a :class:`UdpSocket` on a public host pass its
        bind-time wire endpoint and skip the per-datagram resolution;
        NATed sockets and direct callers pass ``None``.
        """
        self.datagrams_sent += 1
        if not self.datagrams_sent & (AUTO_RETUNE_CHECK_INTERVAL - 1):
            self._auto_retune_check()
        if wire_src is None:
            nat = src_host.nat
            if nat is not None:
                wire_src = nat.outbound(Endpoint(src_host.ip, src_port), dst)
            else:
                wire_src = src_host._wire_endpoints.get(src_port)
                if wire_src is None:
                    wire_src = Endpoint(src_host.ip, src_port)
                    src_host._wire_endpoints[src_port] = wire_src

        # Inline of _resolve_destination: public-host targets (the vast
        # majority at swarm scale) resolve without a helper call.
        route_fail: str | None = None
        target = self._routable.get(dst.ip)
        if target is None:
            dest_host: Host | None = None
            dest_port = 0
            route_fail = "unroutable"
        elif isinstance(target, NatBox):
            dest_host, dest_port, route_fail = self._resolve_nat(target, dst, wire_src)
        else:
            dest_host, dest_port = target, dst.port

        # The global loss trial draws first (and only when loss_rate is
        # set), exactly as before faults existed, so legacy seeded runs
        # replay unchanged. Fault-layer trials draw from the injector's
        # own forked stream.
        reason: str | None = None
        if self.loss_rate > 0 and self.rand.random() < self.loss_rate:
            reason = "loss"
        conditions = None
        faults = self.faults
        if reason is None and faults is not None:
            if faults.host_is_down(src_host):
                reason = "host_down"
            elif dest_host is not None and faults.host_is_down(dest_host):
                reason = "host_down"
            else:
                conditions = faults.conditions_for(src_host, dest_host)
                if conditions is not None:
                    if conditions.blocked:
                        reason = "link_down"
                    elif conditions.loss > 0 and faults.rand.random() < conditions.loss:
                        reason = "fault_loss"

        if self.captures:
            # dropped reflects the *final* outcome, route failures
            # included — a capture must never show an unroutable or
            # NAT-filtered datagram as delivered.
            packet = CapturedPacket(self.loop.now, wire_src, dst, payload,
                                    dropped=reason is not None or route_fail is not None)
            for capture in self.captures:
                capture.record(packet)
        if reason is not None:
            self._drop(reason)
            return
        if route_fail is not None:
            self._drop(route_fail)
            return

        # Inline of latency_between's region rule, allocation-free: no
        # (src, dst) key tuple is built per send (every container
        # allocated here advances the gen-0 GC counter), and the region
        # strings are shared objects so == takes the pointer fast path.
        # The jitter expression is bit-exact with uniform(-j, j) — it is
        # random.Random.uniform's ``a + (b - a) * random()`` with the
        # constants folded — and consumes exactly one draw, so replays
        # are unchanged.
        src_region = src_host.region
        dst_region = dest_host.region
        if src_region == dst_region or src_region is None or dst_region is None:
            base = self._base_latency
        else:
            base = self._cross_region_latency
            self._saw_cross_region = True
        jitter = self.jitter
        delay = base + ((jitter + jitter) * self._rand_random() - jitter)
        if delay <= 0.001:
            delay = 0.001
        if src_host.uplink_bytes_per_sec is not None:
            delay += self._uplink_queue_delay(src_host, len(payload))
        if conditions is not None:
            delay += conditions.extra_latency
            delay += faults.link_queue_delay(src_host, dest_host, len(payload), conditions)
        # Inline of loop.schedule_fast / EventLoop._enqueue (keep the two
        # in sync): a call frame per datagram is measurable at swarm
        # scale. In-band deliveries — the overwhelming majority, since
        # the wheel is sized off this network's own latency band — take
        # three O(1) column appends into the slot's reused rings: no
        # per-datagram entry tuple survives to the old generations, so
        # the dominant remaining cost (GC walking a million long-lived
        # 4-tuples) disappears. Everything else (fault impairments,
        # uplink queueing spikes) falls through to the heap in the
        # classic entry shape, as does the whole path when
        # batch_delivery is off.
        self.datagrams_in_flight += 1
        loop = self.loop
        loop._live += 1
        when = loop.now + delay
        tick = int(when * loop._wheel_inv)
        if 0 <= tick - loop._wheel_tick < loop._wheel_slots:
            slot = tick % loop._wheel_slots
            if self.batch_delivery:
                loop._bwhen[slot].append(when)
                loop._bseq[slot].append(next(loop._seq))
                loop._bobjs[slot] += (dest_host, dest_port, payload, wire_src)
                loop.wheel_batched += 1
            else:
                loop._wheel[slot].append(
                    (when, next(loop._seq),
                     self._deliver_cb, (dest_host, dest_port, payload, wire_src)))
            loop._wheel_count += 1
            loop.wheel_scheduled += 1
        else:
            loop._overflow(
                (when, next(loop._seq),
                 self._deliver_cb, (dest_host, dest_port, payload, wire_src)),
                tick)

    def _uplink_queue_delay(self, src_host: Host, size: int) -> float:
        """Serialisation + queueing on a capacity-limited uplink.

        Each datagram occupies the sender's uplink for size/rate seconds;
        concurrent sends queue behind it (how a seeder saturates when too
        many leechers pull from it at once)."""
        rate = src_host.uplink_bytes_per_sec
        if rate is None or rate <= 0:
            return 0.0
        start = max(self.loop.now, src_host._uplink_busy_until)
        src_host._uplink_busy_until = start + size / rate
        return src_host._uplink_busy_until - self.loop.now

    def _drop_in_flight(self, reason: str) -> None:
        """Count a drop decided at delivery time, after capture.

        By the time a ``host_down``/``no_socket``/``socket_closed``
        verdict is reachable, every registered capture has already
        recorded the packet with ``dropped=False`` (the send-path
        capture reflects only what is knowable at send). The extra
        :attr:`in_flight_drops` counter is what lets captures reconcile:
        ``capture.not_dropped - net.in_flight_drops`` == true deliveries.
        """
        self.in_flight_drops += 1
        self._drop(reason)

    def _deliver(self, host: Host, port: int, payload: bytes, src: Endpoint) -> None:
        self.datagrams_in_flight -= 1
        if self.faults is not None and self.faults.host_is_down(host):
            # The host crashed while the datagram was in flight.
            self._drop_in_flight("host_down")
            return
        sock = host.sockets.get(port)
        if sock is None:
            self._drop_in_flight("no_socket")
            return
        if sock.closed:
            self._drop_in_flight("socket_closed")
            return
        self.datagrams_delivered += 1
        sock.push(payload, src)
        if sock.handler is not None:
            sock.handler(payload, src, sock)

    def _drain_cursor(self, deadline: float, budget: int) -> int:
        """Fire the cursor's leading run of batched datagram rows.

        Installed on the loop as its datagram plane
        (:meth:`EventLoop.set_datagram_plane`): the dispatch loops call
        it whenever the next due event is a 6-field batched row, and one
        call frame here drains every *consecutive* due row — merging per
        item against the heap top and honouring ``deadline`` and
        ``budget``, so dispatch order and ``run_until``/``run_all``/
        ``step`` semantics stay bit-identical to the classic per-entry
        path. Returns the number of rows fired (0 only when the cursor
        minimum lies beyond ``deadline``).

        Accounting (``loop._live``, ``datagrams_in_flight``,
        ``datagrams_delivered``) accumulates in locals and is flushed
        before any handler runs and again on exit, so re-entrant user
        code (and the conservation invariant) always sees consistent
        counters. The per-(host, port) socket lookup is cached across a
        run of rows to the same destination — the per-destination
        batching the columns exist for — and invalidated whenever a
        handler runs, since handlers may close or rebind sockets.
        """
        loop = self.loop
        loop.wheel_batch_drains += 1
        cursor = loop._cursor
        heap = loop._heap
        faults = self.faults
        deliver_cb = self._deliver_cb
        fired = 0
        live = 0          # loop._live decrements owed
        in_flight = 0     # datagrams_in_flight decrements owed
        delivered = 0     # datagrams_delivered increments owed
        prev_host: Host | None = None
        prev_port = -1
        sock: UdpSocket | None = None
        try:
            while fired < budget and cursor:
                top = cursor[-1]
                if len(top) != 6 or top[0] > deadline:
                    break
                if heap and heap[0] < top:
                    break
                cursor.pop()
                when, seq, host, port, payload, src = top
                fired += 1
                live += 1
                in_flight += 1
                loop.now = when
                # The trace hook and sinks see the legacy entry shape
                # (same callsite fingerprint as the classic path),
                # synthesized only when someone is watching. Both hooks
                # are re-read per event, exactly like the classic
                # dispatch loops, so instrumentation attached by a
                # handler mid-drain takes effect immediately.
                entry = None
                trace = EventLoop._trace
                if trace is not None:
                    entry = (when, seq, deliver_cb, (host, port, payload, src))
                    trace(loop, entry)
                if host is not prev_host or port != prev_port:
                    prev_host = host
                    prev_port = port
                    sock = host.sockets.get(port)
                if faults is not None and faults.host_is_down(host):
                    self._drop_in_flight("host_down")
                elif sock is None:
                    self._drop_in_flight("no_socket")
                elif sock.closed:
                    self._drop_in_flight("socket_closed")
                else:
                    delivered += 1
                    sock.push(payload, src)
                    handler = sock.handler
                    if handler is not None:
                        loop._live -= live
                        self.datagrams_in_flight -= in_flight
                        self.datagrams_delivered += delivered
                        live = in_flight = delivered = 0
                        handler(payload, src, sock)
                        # Handler code can bind/close sockets, install
                        # faults, or nest a drain that replaces the
                        # cursor: re-read all cached state.
                        prev_host = None
                        sock = None
                        faults = self.faults
                        cursor = loop._cursor
                        heap = loop._heap
                sinks = EventLoop._sinks
                if sinks:
                    if entry is None:
                        entry = (when, seq, deliver_cb, (host, port, payload, src))
                    for s in sinks:
                        s.record(loop, entry)
        finally:
            loop._live -= live
            self.datagrams_in_flight -= in_flight
            self.datagrams_delivered += delivered
        return fired


class RemoteHostRef:
    """A fault-layer stand-in for a host that lives on another shard.

    Under sharding every shard applies the *whole* fault plan (that is
    what keeps ``host_is_down``/``conditions_for`` answers identical at
    any worker count), so the injector must be able to resolve hosts it
    does not own. A ref carries exactly the attributes the fault layer
    reads or writes — ``name``, ``ip``/``public_ip``, ``region``,
    ``nat`` (always ``None``: sharded swarm hosts are public) and the
    settable ``_uplink_busy_until`` a crash zeroes — and nothing a data
    plane could accidentally deliver into.
    """

    __slots__ = ("name", "ip", "region", "nat", "_uplink_busy_until")

    def __init__(self, name: str, ip: str, region: str | None) -> None:
        self.name = name
        self.ip = ip
        self.region = region
        self.nat = None
        self._uplink_busy_until = 0.0

    @property
    def public_ip(self) -> str:
        """Public hosts are their own wire address."""
        return self.ip

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"RemoteHostRef({self.name}, {self.ip}, region={self.region})"


class ShardNetwork(Network):
    """A :class:`Network` owning one shard of an indexed swarm.

    The sharded swarm addresses hosts by a dense integer index: viewer
    ``i`` is ``v{i}`` at ``ip_base + i`` in region ``regions[i % R]``,
    and regions map to shards as ``shard_of(i) = (i % R) % K``. That
    arithmetic replaces the routing table for swarm traffic —
    :meth:`send_indexed` resolves the destination shard with two
    modulos, keeps the local fast path bit-identical to
    :meth:`Network.send_datagram`'s inline wheel enqueue, and diverts
    cross-shard sends into per-destination-shard *egress columns* (the
    PR 9 array-of-columns record layout: parallel ``when``/``dst``/
    ``src`` arrays, no per-datagram objects) that the coordinator
    exchanges at window barriers. Every non-swarm facility (NATs,
    captures, explicit ``send_datagram``) is untouched.

    Randomness discipline: swarm sends pass *pre-drawn* uniforms in
    (``u_latency``, ``u_fault``) so no shard-local stream is consumed
    on the send path — the precomputed per-region programs are what
    make digests worker-count-invariant (see ``docs/SHARDING.md``).
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        regions: tuple[str, ...],
        *,
        ip_base: str = "5.0.0.1",
        port: int = 4000,
        payload: bytes = b"",
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 <= shard_id < num_shards:
            raise ConfigurationError(f"shard_id {shard_id} outside 0..{num_shards - 1}")
        if num_shards > len(regions):
            raise ConfigurationError(
                f"{num_shards} shards need at least as many regions (got {len(regions)})"
            )
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.regions = tuple(regions)
        self.shard_port = port
        self.shard_payload = payload
        self._ip_base_int = ip_to_int(ip_base)
        #: idx -> local Host, the shard's slice of the swarm.
        self._local_index: dict[int, Host] = {}
        #: idx -> RemoteHostRef, built lazily (fault queries only).
        self._remote_refs: dict[int, RemoteHostRef] = {}
        #: Per-destination-shard egress columns: (when, dst_idx, src_idx).
        self._egress: list[tuple[array, array, array]] = [
            (array("d"), array("q"), array("q")) for _ in range(num_shards)
        ]
        self.egress_sent = 0
        self.remote_injected = 0

    # -- indexed topology ------------------------------------------------

    def region_of(self, idx: int) -> str:
        """The region viewer ``idx`` lives in."""
        return self.regions[idx % len(self.regions)]

    def shard_of(self, idx: int) -> int:
        """The shard that owns viewer ``idx``."""
        return (idx % len(self.regions)) % self.num_shards

    def indexed_ip(self, idx: int) -> str:
        """The public address of viewer ``idx`` (dense from ``ip_base``)."""
        return int_to_ip(self._ip_base_int + idx)

    def add_indexed_host(self, idx: int) -> Host:
        """Create the local host for viewer ``idx``."""
        host = self.add_host(f"v{idx}", ip=self.indexed_ip(idx), region=self.region_of(idx))
        self._local_index[idx] = host
        return host

    def host_ref(self, idx: int) -> "Host | RemoteHostRef":
        """Viewer ``idx`` as the fault layer sees it: Host or remote ref."""
        host = self._local_index.get(idx)
        if host is not None:
            return host
        ref = self._remote_refs.get(idx)
        if ref is None:
            ref = RemoteHostRef(f"v{idx}", self.indexed_ip(idx), self.region_of(idx))
            self._remote_refs[idx] = ref
        return ref

    # -- sharded data plane ----------------------------------------------

    def send_indexed(self, src_idx: int, dst_idx: int, u_latency: float, u_fault: float) -> None:
        """Send one swarm datagram from viewer ``src_idx`` to ``dst_idx``.

        Mirrors :meth:`send_datagram`'s fault checks, inline latency
        computation and inline wheel enqueue, with three deliberate
        differences. (1) Randomness comes from the caller's pre-drawn
        uniforms, not ``self.rand`` — the same draws feed the same send
        at any worker count. (2) The global ``loss_rate`` trial and
        captures are unsupported (the sharded swarm drives loss through
        fault plans; both would consume or observe shard-local state).
        (3) A cross-shard destination appends ``(when, dst, src)`` to
        the egress columns instead of scheduling: the datagram counts as
        sent here and enters ``datagrams_in_flight`` only on the owning
        shard at injection time, so the *global* conservation invariant
        ``sent == delivered + dropped + in_flight`` holds after merge.
        """
        self.datagrams_sent += 1
        if not self.datagrams_sent & (AUTO_RETUNE_CHECK_INTERVAL - 1):
            self._auto_retune_check()
        src_host = self._local_index[src_idx]
        src_region = src_host.region
        dst_region = self.regions[dst_idx % len(self.regions)]
        payload = self.shard_payload

        conditions = None
        faults = self.faults
        if faults is not None:
            dst_ref = self.host_ref(dst_idx)
            if faults.host_is_down(src_host) or faults.host_is_down(dst_ref):
                self._drop("host_down")
                return
            conditions = faults.conditions_for(src_host, dst_ref)
            if conditions is not None:
                if conditions.blocked:
                    self._drop("link_down")
                    return
                if conditions.loss > 0 and u_fault < conditions.loss:
                    self._drop("fault_loss")
                    return

        # Inline latency: bit-exact with send_datagram's folded uniform.
        if src_region == dst_region:
            base = self._base_latency
        else:
            base = self._cross_region_latency
            self._saw_cross_region = True
        jitter = self.jitter
        delay = base + ((jitter + jitter) * u_latency - jitter)
        if delay <= 0.001:
            delay = 0.001
        if conditions is not None:
            delay += conditions.extra_latency
            # Stateful, but K-invariant: all sends for an ordered host
            # pair originate on the sender's shard in time order, so the
            # per-pair busy clock replays identically at any K.
            delay += faults.link_queue_delay(src_host, dst_ref, len(payload), conditions)
        when = self.loop.now + delay

        dst_shard = (dst_idx % len(self.regions)) % self.num_shards
        if dst_shard != self.shard_id:
            cols = self._egress[dst_shard]
            cols[0].append(when)
            cols[1].append(dst_idx)
            cols[2].append(src_idx)
            self.egress_sent += 1
            return

        # Local destination: the PR 9 inline wheel enqueue, verbatim.
        dest_host = self._local_index[dst_idx]
        dest_port = self.shard_port
        wire_src = src_host._wire_endpoints.get(self.shard_port)
        if wire_src is None:
            wire_src = Endpoint(src_host.ip, self.shard_port)
            src_host._wire_endpoints[self.shard_port] = wire_src
        self.datagrams_in_flight += 1
        loop = self.loop
        loop._live += 1
        tick = int(when * loop._wheel_inv)
        if 0 <= tick - loop._wheel_tick < loop._wheel_slots:
            slot = tick % loop._wheel_slots
            if self.batch_delivery:
                loop._bwhen[slot].append(when)
                loop._bseq[slot].append(next(loop._seq))
                loop._bobjs[slot] += (dest_host, dest_port, payload, wire_src)
                loop.wheel_batched += 1
            else:
                loop._wheel[slot].append(
                    (when, next(loop._seq),
                     self._deliver_cb, (dest_host, dest_port, payload, wire_src)))
            loop._wheel_count += 1
            loop.wheel_scheduled += 1
        else:
            loop._overflow(
                (when, next(loop._seq),
                 self._deliver_cb, (dest_host, dest_port, payload, wire_src)),
                tick)

    def flush_egress(self) -> dict[int, tuple[array, array, array]]:
        """Detach and return the non-empty egress columns, keyed by shard."""
        out: dict[int, tuple[array, array, array]] = {}
        for shard, cols in enumerate(self._egress):
            if cols[0]:
                out[shard] = cols
                self._egress[shard] = (array("d"), array("q"), array("q"))
        return out

    def inject_batches(self, batches: list[tuple[array, array, array]]) -> int:
        """Merge remote arrivals into the local queue (seq re-keying).

        ``batches`` arrive in source-shard-ascending order; rows are
        stable-sorted by delivery time and each gets a *fresh local*
        sequence number in that order, so the ``(when, seq)`` dispatch
        order the wheel and heap share also totally orders remote
        arrivals. The window protocol guarantees every ``when`` is at or
        past the barrier the loop just reached — validated once against
        the earliest row, as :meth:`EventLoop.inject` would per row.
        """
        rows: list[tuple[float, int, int]] = []
        for when_col, dst_col, src_col in batches:
            rows.extend(zip(when_col, dst_col, src_col))
        if not rows:
            return 0
        rows.sort(key=lambda row: row[0])
        loop = self.loop
        if rows[0][0] < loop.now:
            raise ConfigurationError(
                f"cannot inject at {rows[0][0]} < now {loop.now} (window protocol violated)"
            )
        port = self.shard_port
        payload = self.shard_payload
        base = self._ip_base_int
        local = self._local_index
        deliver_cb = self._deliver_cb
        batching = self.batch_delivery
        self.datagrams_in_flight += len(rows)
        loop._live += len(rows)
        for when, dst_idx, src_idx in rows:
            dest_host = local[dst_idx]
            wire_src = Endpoint(int_to_ip(base + src_idx), port)
            tick = int(when * loop._wheel_inv)
            if 0 <= tick - loop._wheel_tick < loop._wheel_slots:
                slot = tick % loop._wheel_slots
                if batching:
                    loop._bwhen[slot].append(when)
                    loop._bseq[slot].append(next(loop._seq))
                    loop._bobjs[slot] += (dest_host, port, payload, wire_src)
                    loop.wheel_batched += 1
                else:
                    loop._wheel[slot].append(
                        (when, next(loop._seq),
                         deliver_cb, (dest_host, port, payload, wire_src)))
                loop._wheel_count += 1
                loop.wheel_scheduled += 1
            else:
                loop._overflow(
                    (when, next(loop._seq),
                     deliver_cb, (dest_host, port, payload, wire_src)),
                    tick)
        self.remote_injected += len(rows)
        return len(rows)
