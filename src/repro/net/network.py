"""The datagram network: hosts, sockets, routing, latency, loss.

The network routes by *public* address: each routable IP belongs either
to a public :class:`Host` or to a :class:`~repro.net.nat.NatBox` whose
attached hosts carry private addresses. Sending through the network
performs NAT translation, captures the wire-level packet for every
interested :class:`~repro.net.capture.TrafficCapture`, applies loss,
and schedules delivery on the event loop after a latency drawn from the
region-aware latency model.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.net.addresses import Endpoint, int_to_ip, ip_to_int
from repro.net.capture import CapturedPacket, TrafficCapture
from repro.net.clock import EventLoop
from repro.net.nat import NatBox, NatType
from repro.util.errors import AddressInUseError, ConfigurationError, NetworkError
from repro.util.rand import DeterministicRandom

DatagramHandler = Callable[[bytes, Endpoint, "UdpSocket"], None]


class UdpSocket:
    """A bound UDP port on a host.

    Incoming datagrams are passed to ``handler(payload, src, socket)``
    when one is set, and always appended to :attr:`inbox` so tests can
    poll without wiring callbacks.
    """

    def __init__(self, host: "Host", port: int, handler: DatagramHandler | None = None) -> None:
        self.host = host
        self.port = port
        self.handler = handler
        self.inbox: list[tuple[bytes, Endpoint]] = []
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def endpoint(self) -> Endpoint:
        """The socket's local (possibly private) address."""
        return Endpoint(self.host.ip, self.port)

    def send(self, dst: Endpoint, payload: bytes) -> None:
        """Send."""
        if self.closed:
            raise NetworkError(f"socket {self.endpoint} is closed")
        self.bytes_sent += len(payload)
        self.host.network.send_datagram(self.host, self.port, dst, payload)

    def deliver(self, payload: bytes, src: Endpoint) -> None:
        """Push a message to the attached client, if any."""
        if self.closed:
            return
        self.bytes_received += len(payload)
        self.inbox.append((payload, src))
        if self.handler is not None:
            self.handler(payload, src, self)

    def close(self) -> None:
        """Close and release resources."""
        self.closed = True
        self.host.release_port(self.port)


class Host:
    """A machine on the network, optionally behind a NAT."""

    def __init__(
        self,
        network: "Network",
        name: str,
        ip: str,
        nat: NatBox | None = None,
        region: str | None = None,
        uplink_bytes_per_sec: float | None = None,
    ) -> None:
        self.network = network
        self.name = name
        self.ip = ip
        self.nat = nat
        self.region = region
        # Residential uplinks are finite; None = unconstrained (the
        # default, matching the original latency-only model).
        self.uplink_bytes_per_sec = uplink_bytes_per_sec
        self._uplink_busy_until = 0.0
        self.sockets: dict[int, UdpSocket] = {}
        self._ephemeral = itertools.count(10000)

    @property
    def public_ip(self) -> str:
        """The address the rest of the Internet sees for this host."""
        return self.nat.external_ip if self.nat else self.ip

    def bind_udp(self, port: int = 0, handler: DatagramHandler | None = None) -> UdpSocket:
        """Bind a UDP socket; port 0 picks a free ephemeral port."""
        if port == 0:
            port = next(self._ephemeral)
            while port in self.sockets:
                port = next(self._ephemeral)
        if port in self.sockets:
            raise AddressInUseError(f"{self.name}: port {port} already bound")
        sock = UdpSocket(self, port, handler)
        self.sockets[port] = sock
        return sock

    def release_port(self, port: int) -> None:
        """Release port."""
        self.sockets.pop(port, None)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Host({self.name}, {self.ip}, nat={self.nat is not None})"


class Network:
    """The simulated Internet."""

    def __init__(
        self,
        loop: EventLoop | None = None,
        rand: DeterministicRandom | None = None,
        base_latency: float = 0.02,
        cross_region_latency: float = 0.12,
        jitter: float = 0.004,
        loss_rate: float = 0.0,
    ) -> None:
        self.loop = loop or EventLoop()
        self.rand = (rand or DeterministicRandom(0)).fork("network")
        self.base_latency = base_latency
        self.cross_region_latency = cross_region_latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.hosts: dict[str, Host] = {}  # keyed by the host's own ip
        self._routable: dict[str, Host | NatBox] = {}  # public address space
        self.captures: list[TrafficCapture] = []
        self._next_public_ip = ip_to_int("5.0.0.1")
        self._next_nat_subnet = itertools.count(1)
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        self.datagrams_in_flight = 0
        self.drops_by_reason: dict[str, int] = {}
        # Installed by repro.net.faults.FaultInjector; None = no chaos.
        self.faults = None

    # -- topology --------------------------------------------------------

    def allocate_public_ip(self) -> str:
        """Allocate public ip."""
        ip = int_to_ip(self._next_public_ip)
        self._next_public_ip += 1
        return ip

    def add_host(
        self,
        name: str,
        ip: str | None = None,
        nat: NatBox | None = None,
        region: str | None = None,
        uplink_bytes_per_sec: float | None = None,
    ) -> Host:
        """Create a host. Behind a NAT it gets a private subnet address."""
        if nat is not None:
            if ip is not None:
                raise ConfigurationError("cannot set explicit ip for a NATed host")
            ip = nat.allocate_internal_ip()
        elif ip is None:
            ip = self.allocate_public_ip()
        if ip in self.hosts:
            raise ConfigurationError(f"duplicate host ip {ip}")
        host = Host(self, name, ip, nat=nat, region=region,
                    uplink_bytes_per_sec=uplink_bytes_per_sec)
        self.hosts[ip] = host
        if nat is None:
            self._routable[ip] = host
        return host

    def add_nat(
        self,
        nat_type: NatType = NatType.PORT_RESTRICTED_CONE,
        external_ip: str | None = None,
    ) -> NatBox:
        """Create a NAT box with its own public address and subnet."""
        if external_ip is None:
            external_ip = self.allocate_public_ip()
        subnet_index = next(self._next_nat_subnet)
        subnet = f"192.168.{subnet_index % 256}" if subnet_index < 256 else (
            f"10.{subnet_index // 256}.{subnet_index % 256}"
        )
        nat = NatBox(external_ip, nat_type, subnet_prefix=subnet)
        self._routable[external_ip] = nat
        return nat

    def rebind_nat(self, nat: NatBox, new_external_ip: str | None = None) -> tuple[str, str]:
        """Give a NAT box a fresh public mapping (lease expiry / renumber).

        Returns ``(old_ip, new_ip)``. The old external address leaves
        the public address space, every existing port mapping is voided
        (established flows must re-punch), and the box reappears at the
        new address — the churn event the paper's ICE layer must survive.
        """
        if self._routable.get(nat.external_ip) is not nat:
            raise ConfigurationError(f"NAT {nat.external_ip} is not attached to this network")
        if new_external_ip is None:
            new_external_ip = self.allocate_public_ip()
        if new_external_ip in self._routable or new_external_ip in self.hosts:
            raise ConfigurationError(f"address {new_external_ip} already in use")
        old_ip = nat.external_ip
        del self._routable[old_ip]
        nat.rebind(new_external_ip)
        self._routable[new_external_ip] = nat
        return old_ip, new_external_ip

    def is_routable(self, ip: str) -> bool:
        """True when ``ip`` is claimed in the public address space.

        A routable address belongs either to a public :class:`Host` or
        to a :class:`~repro.net.nat.NatBox`'s external side. Callers
        allocating addresses (e.g. geo-located viewer hosts) use this
        to avoid collisions instead of reaching into the private
        routing table.
        """
        return ip in self._routable

    def add_capture(self, capture: TrafficCapture) -> TrafficCapture:
        """Register a traffic capture observing every sent datagram."""
        self.captures.append(capture)
        return capture

    # -- data plane ------------------------------------------------------

    def latency_between(self, src: Host, dst_region: str | None) -> float:
        """Latency between."""
        base = (
            self.base_latency
            if src.region == dst_region or src.region is None or dst_region is None
            else self.cross_region_latency
        )
        return max(0.001, base + self.rand.uniform(-self.jitter, self.jitter))

    def _drop(self, reason: str) -> None:
        """Count one dropped datagram, under exactly one reason.

        Every drop path funnels through here, so ``datagrams_dropped ==
        sum(drops_by_reason.values())`` holds by construction — the
        conservation invariant the chaos suite pins.
        """
        self.datagrams_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _resolve_destination(
        self, dst: Endpoint, wire_src: Endpoint
    ) -> tuple[Host | None, int, str | None]:
        """Route a wire destination to ``(host, port, drop_reason)``.

        Read-only (NAT ``inbound`` never mutates), so it is safe to call
        before the loss decision without perturbing the seeded stream.
        """
        target = self._routable.get(dst.ip)
        if target is None:
            # Unroutable destination (e.g. a bogon candidate): black-hole.
            return None, 0, "unroutable"
        if isinstance(target, NatBox):
            internal = target.inbound(dst.port, wire_src)
            if internal is None:
                return None, 0, "nat_filtered"
            dest_host = self.hosts.get(internal.ip)
            if dest_host is None:
                return None, 0, "no_host"
            return dest_host, internal.port, None
        return target, dst.port, None

    def send_datagram(self, src_host: Host, src_port: int, dst: Endpoint, payload: bytes) -> None:
        """Send one datagram. NAT-translates, captures, drops, delivers."""
        self.datagrams_sent += 1
        if src_host.nat is not None:
            wire_src = src_host.nat.outbound(Endpoint(src_host.ip, src_port), dst)
        else:
            wire_src = Endpoint(src_host.ip, src_port)

        dest_host, dest_port, route_fail = self._resolve_destination(dst, wire_src)

        # The global loss trial draws first (and only when loss_rate is
        # set), exactly as before faults existed, so legacy seeded runs
        # replay unchanged. Fault-layer trials draw from the injector's
        # own forked stream.
        reason: str | None = None
        if self.loss_rate > 0 and self.rand.random() < self.loss_rate:
            reason = "loss"
        conditions = None
        if reason is None and self.faults is not None:
            if self.faults.host_is_down(src_host):
                reason = "host_down"
            elif dest_host is not None and self.faults.host_is_down(dest_host):
                reason = "host_down"
            else:
                conditions = self.faults.conditions_for(src_host, dest_host)
                if conditions is not None:
                    if conditions.blocked:
                        reason = "link_down"
                    elif conditions.loss > 0 and self.faults.rand.random() < conditions.loss:
                        reason = "fault_loss"

        packet = CapturedPacket(self.loop.now, wire_src, dst, payload,
                                dropped=reason is not None)
        for capture in self.captures:
            capture.record(packet)
        if reason is not None:
            self._drop(reason)
            return
        if route_fail is not None:
            self._drop(route_fail)
            return
        assert dest_host is not None

        delay = self.latency_between(src_host, dest_host.region)
        delay += self._uplink_queue_delay(src_host, len(payload))
        if conditions is not None:
            delay += conditions.extra_latency
            delay += self.faults.link_queue_delay(src_host, dest_host, len(payload), conditions)
        self.datagrams_in_flight += 1
        self.loop.schedule(delay, self._deliver, dest_host, dest_port, payload, wire_src)

    def _uplink_queue_delay(self, src_host: Host, size: int) -> float:
        """Serialisation + queueing on a capacity-limited uplink.

        Each datagram occupies the sender's uplink for size/rate seconds;
        concurrent sends queue behind it (how a seeder saturates when too
        many leechers pull from it at once)."""
        rate = src_host.uplink_bytes_per_sec
        if rate is None or rate <= 0:
            return 0.0
        start = max(self.loop.now, src_host._uplink_busy_until)
        src_host._uplink_busy_until = start + size / rate
        return src_host._uplink_busy_until - self.loop.now

    def _deliver(self, host: Host, port: int, payload: bytes, src: Endpoint) -> None:
        self.datagrams_in_flight -= 1
        if self.faults is not None and self.faults.host_is_down(host):
            # The host crashed while the datagram was in flight.
            self._drop("host_down")
            return
        sock = host.sockets.get(port)
        if sock is None:
            self._drop("no_socket")
            return
        if sock.closed:
            self._drop("socket_closed")
            return
        self.datagrams_delivered += 1
        sock.deliver(payload, src)
