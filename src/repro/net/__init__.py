"""Discrete-event network substrate.

This package simulates the slice of the Internet that the paper's
measurement ran on: an event loop (:mod:`repro.net.clock`), IPv4
endpoints and address classification (:mod:`repro.net.addresses`), a
datagram network with per-link latency and loss (:mod:`repro.net.network`),
the four classic NAT behaviours (:mod:`repro.net.nat`), and a
tcpdump-style capture facility (:mod:`repro.net.capture`) that the
dynamic PDN detector parses for STUN/DTLS flows.
"""

from repro.net.clock import EventLoop, TimerHandle
from repro.net.addresses import Endpoint, IpClass, classify_ip, is_bogon
from repro.net.capture import CapturedPacket, TrafficCapture
from repro.net.nat import NatBox, NatType
from repro.net.network import Host, Network, UdpSocket

__all__ = [
    "EventLoop",
    "TimerHandle",
    "Endpoint",
    "IpClass",
    "classify_ip",
    "is_bogon",
    "CapturedPacket",
    "TrafficCapture",
    "NatBox",
    "NatType",
    "Host",
    "Network",
    "UdpSocket",
]
