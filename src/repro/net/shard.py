"""Sharded multi-process swarm simulation: conservative PDES by region.

The single-process core tops out around 120–140k events/sec at 100k
hosts (``docs/PERFORMANCE.md``), so the only way up is out. This module
partitions an indexed swarm across worker processes **by region** and
runs the shards in parallel under a conservative parallel-discrete-event
time-window protocol:

* every cross-shard datagram is cross-region (regions map to shards as
  ``shard_of(i) = (i % R) % K``), so its delivery delay is at least the
  **lookahead** ``L = max(0.001, cross_region_latency - jitter)``;
* each shard therefore runs its :class:`~repro.net.clock.EventLoop`
  freely up to the next window barrier ``W_k = W_{k-1} + L`` — nothing
  another shard does during the window can schedule an event inside it;
* at the barrier, shards exchange their egress columns (the PR 9
  array-of-columns record layout — parallel ``when``/``dst``/``src``
  arrays, no per-datagram objects on the wire) over pipes, and each
  shard merges remote arrivals through the existing ``(when, seq)``
  timing-wheel/heap order with fresh local sequence numbers
  (:meth:`~repro.net.network.ShardNetwork.inject_batches`).

Worker-count invariance (the digest oracle) rests on three rules, all
enforced here and spelled out in ``docs/SHARDING.md``:

1. **Randomness is precomputed per region.** A region's traffic program
   (send times, destinations, latency and fault-loss uniforms) is drawn
   from ``DeterministicRandom(seed).fork(f"traffic:{r}")`` before the
   clock starts, so the draws a send consumes never depend on which
   process executes it.
2. **Every shard applies the whole fault plan.** Each worker builds the
   identical :class:`~repro.net.faults.FaultPlan` from the same seeded
   planner and applies every event — remote hosts resolve to
   :class:`~repro.net.network.RemoteHostRef` stubs — so
   ``host_is_down``/``conditions_for`` answers match at any K.
3. **The digest is composed of K-invariant quantities only**: global
   datagram totals, drops by reason, per-region delivery aggregates and
   a commutative per-host checksum. Window counts, worker counts, wheel
   counters and per-shard event counts are diagnostics, never digest
   inputs.

``run_workload`` is the entry point; it picks the multi-process
coordinator, or an in-process round-robin ("inline") coordinator when
the run needs a single address space — one worker, an exact
``max_events`` budget, or an armed dispatch-trace hook (``verify
--sanitize`` must see every shard's events in one
:class:`~repro.analysis.sanitizer.DispatchTrace`).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from array import array
from dataclasses import dataclass, field

from repro.net.clock import EventLoop
from repro.net.faults import FaultInjector, FaultPlan, RandomFaultPlanner, load_plan
from repro.net.network import Host, RemoteHostRef, ShardNetwork
from repro.scenarios.arrivals import FlashCrowdArrivals
from repro.util.errors import ConfigurationError
from repro.util.perf import peak_rss_kb
from repro.util.rand import DeterministicRandom

#: Fault plans draw target hosts from a bounded hostname prefix, so a
#: million-viewer swarm does not materialise a million-string host list
#: per worker (and plans stay comparable across swarm sizes ≥ the cap).
FAULT_PLAN_HOSTS = 1024

#: Default region ring. Four regions is the paper's coarse geography
#: and lets ``--shard-workers`` scale to 4 (K may not exceed R).
DEFAULT_REGIONS = ("us", "eu", "asia", "sa")

_CHECKSUM_MASK = 0xFFFFFFFFFFFFFFFF

ARRIVAL_MODES = ("uniform", "flash-crowd")


@dataclass(frozen=True)
class SwarmWorkload:
    """A fully seeded indexed-swarm description (the digest's identity).

    Everything that affects simulation *outcome* lives here; worker
    count deliberately does not, so ``to_dict()`` — and therefore the
    run digest — is identical at any ``--shard-workers``.
    """

    viewers: int = 5_000
    datagrams: int = 25_000
    seed: int = 2024
    regions: tuple[str, ...] = DEFAULT_REGIONS
    locality: float = 0.95
    payload_bytes: int = 200
    arrivals: str = "uniform"
    faults: str = "calm"
    horizon: float = 60.0
    base_latency: float = 0.02
    cross_region_latency: float = 0.12
    jitter: float = 0.004
    port: int = 4000
    ip_base: str = "5.0.0.1"

    def __post_init__(self) -> None:
        if self.viewers < 1:
            raise ConfigurationError("a swarm needs at least one viewer")
        if self.datagrams < 0:
            raise ConfigurationError("datagrams must be non-negative")
        if not self.regions:
            raise ConfigurationError("a swarm needs at least one region")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigurationError("locality must be within [0, 1]")
        if self.arrivals not in ARRIVAL_MODES:
            known = ", ".join(ARRIVAL_MODES)
            raise ConfigurationError(
                f"unknown arrival mode {self.arrivals!r} (known: {known})")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.base_latency <= 0 or self.jitter < 0:
            raise ConfigurationError("latency knobs out of range")
        if self.cross_region_latency < self.base_latency:
            raise ConfigurationError(
                "cross-region latency must be at least the same-region base")

    @property
    def lookahead(self) -> float:
        """The conservative window width: the cross-region delay floor.

        Cross-region one-way delay is ``cross + uniform(-j, j)`` clamped
        above 1 ms, so it can never undercut ``max(0.001, cross - j)``
        — the same float expression, evaluated once here. Fault
        impairments only *add* delay, so the floor survives chaos.
        """
        return max(0.001, self.cross_region_latency - self.jitter)

    def to_dict(self) -> dict:
        """Serialise to plain JSON types (the digest form)."""
        return {
            "viewers": self.viewers,
            "datagrams": self.datagrams,
            "seed": self.seed,
            "regions": list(self.regions),
            "locality": self.locality,
            "payload_bytes": self.payload_bytes,
            "arrivals": self.arrivals,
            "faults": self.faults,
            "horizon": self.horizon,
            "base_latency": self.base_latency,
            "cross_region_latency": self.cross_region_latency,
            "jitter": self.jitter,
            "port": self.port,
            "ip_base": self.ip_base,
        }


def shard_of(idx: int, num_regions: int, num_shards: int) -> int:
    """The shard owning viewer ``idx`` under the region ring mapping."""
    return (idx % num_regions) % num_shards


class _TrafficProgram:
    """One shard's precomputed send schedule, columnar."""

    __slots__ = ("when", "src", "dst", "u_latency", "u_fault")

    def __init__(self) -> None:
        self.when = array("d")
        self.src = array("q")
        self.dst = array("q")
        self.u_latency = array("d")
        self.u_fault = array("d")

    def __len__(self) -> int:
        return len(self.when)


def _region_member_count(viewers: int, num_regions: int, region_index: int) -> int:
    """How many viewer indices below ``viewers`` land in this region."""
    if viewers <= region_index:
        return 0
    return (viewers - region_index + num_regions - 1) // num_regions


def _region_program(workload: SwarmWorkload, region_index: int) -> _TrafficProgram:
    """Materialise one region's sends from its own forked stream.

    Per-region streams are the worker-count-invariance seam: region
    ``r``'s draws depend only on ``(seed, r)``, never on which shard
    executes them or what other regions drew. Draw order per send is
    fixed — arrival time (uniform mode), locality trial, destination,
    latency uniform, fault-loss uniform — and flash-crowd mode adds one
    trailing perturbation draw per send (see below).
    """
    rand = DeterministicRandom(workload.seed).fork(f"traffic:{region_index}")
    num_regions = len(workload.regions)
    viewers = workload.viewers
    members = _region_member_count(viewers, num_regions, region_index)
    program = _TrafficProgram()
    if members == 0 or workload.datagrams == 0:
        return program
    base_share = workload.datagrams // viewers
    remainder = workload.datagrams % viewers
    total = sum(
        base_share + (1 if region_index + j * num_regions < remainder else 0)
        for j in range(members)
    )
    if total == 0:
        return program
    window = workload.horizon * 0.8

    flash_times: list[float] | None = None
    if workload.arrivals == "flash-crowd":
        spike = total // 2
        baseline = max(1.0, (total - spike) / (window / 60.0))
        process = FlashCrowdArrivals(
            base_rate_per_min=baseline,
            spike_at_sec=window * 0.25,
            spike_arrivals=spike,
            spike_width_sec=max(window * 0.1, 0.001),
        )
        flash_times = process.times(rand, window)
        if not flash_times:  # degenerate tiny windows: keep the pump alive
            flash_times = [window * 0.5]

    when = program.when
    src_col = program.src
    dst_col = program.dst
    u_lat = program.u_latency
    u_fault = program.u_fault
    uniform = rand.uniform
    draw = rand.random
    randint = rand.randint
    locality = workload.locality
    sent = 0
    for j in range(members):
        src = region_index + j * num_regions
        count = base_share + (1 if src < remainder else 0)
        for _ in range(count):
            if flash_times is None:
                t = uniform(0.0, window)
            else:
                # Flash-crowd times are rounded to 1 ms by the arrival
                # process, which can collide exactly with 3-decimal
                # fault-plan instants and make (when, seq) tie order
                # depend on K. A sub-microsecond deterministic
                # perturbation keeps the crowd shape and restores
                # measure-zero tie probability.
                t = flash_times[sent % len(flash_times)] + draw() * 1e-6
            u_loc = draw()
            if u_loc < locality:
                dst = region_index + randint(0, members - 1) * num_regions
            else:
                dst = randint(0, viewers - 1)
            when.append(t)
            src_col.append(src)
            dst_col.append(dst)
            u_lat.append(draw())
            u_fault.append(draw())
            sent += 1
    return program


def _shard_program(workload: SwarmWorkload, shard_id: int, num_shards: int) -> _TrafficProgram:
    """Concatenate the owned regions' programs and sort by send time.

    Owned regions concatenate in ascending region order at every K, so
    the stable time sort leaves equal-time sends in the same relative
    order a single shard owning all regions would produce — the pump
    chain then executes sends in an order independent of K.
    """
    merged = _TrafficProgram()
    for region_index in range(len(workload.regions)):
        if region_index % num_shards != shard_id:
            continue
        part = _region_program(workload, region_index)
        merged.when.extend(part.when)
        merged.src.extend(part.src)
        merged.dst.extend(part.dst)
        merged.u_latency.extend(part.u_latency)
        merged.u_fault.extend(part.u_fault)
    if not merged.when:
        return merged
    order = sorted(range(len(merged.when)), key=merged.when.__getitem__)
    out = _TrafficProgram()
    for i in order:
        out.when.append(merged.when[i])
        out.src.append(merged.src[i])
        out.dst.append(merged.dst[i])
        out.u_latency.append(merged.u_latency[i])
        out.u_fault.append(merged.u_fault[i])
    return out


def build_fault_plan(workload: SwarmWorkload) -> FaultPlan:
    """The workload's fault plan — identical on every shard.

    Presets draw from ``fork("fault-plan")`` of the workload seed over
    the bounded ``v0..v{N-1}`` hostname prefix; a ``.json`` spec loads
    the explicit plan. Either way the result depends only on the
    workload, so every worker arms the same events at the same times.
    """
    hostnames = [f"v{i}" for i in range(min(workload.viewers, FAULT_PLAN_HOSTS))]
    planner = RandomFaultPlanner(DeterministicRandom(workload.seed).fork("fault-plan"))
    return load_plan(
        workload.faults,
        planner=planner,
        hosts=hostnames,
        horizon=workload.horizon,
        regions=workload.regions,
        hostnames=(),
    )


class ShardFaultInjector(FaultInjector):
    """A :class:`FaultInjector` that resolves hosts across shard lines.

    The base ``_host`` scans ``network.hosts`` — which on a shard holds
    only the local slice, so a crash of a remote viewer would be
    silently skipped and ``host_is_down`` answers would depend on K.
    Indexed viewer names (``v{i}``) resolve through the shard's
    directory instead: local indices to their real :class:`Host`,
    remote ones to a :class:`RemoteHostRef` the fault state machine can
    mark down, heal and query exactly like a local host.
    """

    def _host(self, name: str) -> "Host | RemoteHostRef | None":
        network = self.network
        if isinstance(network, ShardNetwork) and name.startswith("v"):
            try:
                idx = int(name[1:])
            except ValueError:
                idx = -1
            if idx >= 0:
                return network.host_ref(idx)
        return super()._host(name)


class ShardWorker:
    """One shard: its network slice, traffic pump and fault injector."""

    def __init__(self, workload: SwarmWorkload, shard_id: int, num_shards: int) -> None:
        self.workload = workload
        self.shard_id = shard_id
        rand = DeterministicRandom(workload.seed)
        self.net = ShardNetwork(
            shard_id,
            num_shards,
            workload.regions,
            ip_base=workload.ip_base,
            port=workload.port,
            payload=b"\x00" * workload.payload_bytes,
            rand=rand,
            base_latency=workload.base_latency,
            cross_region_latency=workload.cross_region_latency,
            jitter=workload.jitter,
        )
        self.loop = self.net.loop
        num_regions = len(workload.regions)
        for idx in range(workload.viewers):
            if (idx % num_regions) % num_shards == shard_id:
                host = self.net.add_indexed_host(idx)
                # The swarm counts bytes_received; a shallow inbox ring
                # keeps million-viewer RSS bounded.
                host.bind_udp(workload.port, inbox_limit=8)
        self.faults: ShardFaultInjector | None = None
        plan = build_fault_plan(workload)
        if len(plan):
            # Armed before the pump starts, so fault events' sequence
            # numbers precede every send's — at an exact time tie the
            # fault applies first, at any worker count.
            self.faults = ShardFaultInjector(self.net, rand.fork("shard-faults"))
            self.faults.arm(plan)
        self.program = _shard_program(workload, shard_id, num_shards)
        self._cursor = 0
        self.peak_occupancy = 0
        if len(self.program):
            self.loop.schedule_fast(self.program.when[0], self._pump, ())

    def _pump(self) -> None:
        """Execute one precomputed send, then chain to the next."""
        program = self.program
        i = self._cursor
        self._cursor = i + 1
        self.net.send_indexed(
            program.src[i], program.dst[i], program.u_latency[i], program.u_fault[i]
        )
        i += 1
        if i < len(program.when):
            self.loop.schedule_fast(program.when[i], self._pump, ())

    def run_window(self, barrier: float, max_events: int | None = None) -> int:
        """Advance this shard to ``barrier``; returns events fired."""
        occupancy = self.loop.wheel_occupancy
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return self.loop.run_until_window(barrier, max_events)

    def stats(self) -> dict:
        """This shard's digest-facing aggregates (all K-invariant).

        The per-host checksum folds ``(idx, bytes_received)`` pairs
        through a commutative 64-bit mix, so hosts may be summed in any
        order — and cross-shard same-instant delivery ordering (the one
        place sharding may legally reorder equal-time events) cannot
        perturb it.
        """
        net = self.net
        port = self.workload.port
        per_region: dict[str, list[int]] = {}
        checksum = 0
        for idx, host in net._local_index.items():
            sock = host.sockets.get(port)
            received = sock.bytes_received if sock is not None else 0
            cell = per_region.get(host.region)
            if cell is None:
                cell = per_region[host.region] = [0, 0]
            cell[0] += 1
            cell[1] += received
            checksum = (
                checksum
                + ((idx + 0x9E3779B9) * 0xBF58476D1CE4E5B9
                   + received * 0x94D049BB133111EB)
            ) & _CHECKSUM_MASK
        return {
            "sent": net.datagrams_sent,
            "delivered": net.datagrams_delivered,
            "dropped": net.datagrams_dropped,
            "in_flight": net.datagrams_in_flight,
            "drops_by_reason": dict(net.drops_by_reason),
            "per_region": {
                region: {"hosts": cell[0], "bytes_received": cell[1]}
                for region, cell in per_region.items()
            },
            "host_checksum": checksum,
        }

    def final_report(self) -> dict:
        """Stats plus per-shard diagnostics (K-dependent, digest-exempt)."""
        occupancy = self.loop.wheel_occupancy
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        wheel = self.loop.wheel_stats()
        # Occupancy is a gauge; report the barrier-sampled peak, not the
        # (empty) end-of-run value.
        wheel["occupancy"] = self.peak_occupancy
        return {
            "shard": self.shard_id,
            "hosts": len(self.net._local_index),
            "stats": self.stats(),
            "egress_sent": self.net.egress_sent,
            "remote_injected": self.net.remote_injected,
            "events_fired": self.loop.events_fired,
            "fault_events_applied": self.faults.events_applied if self.faults else 0,
            "wheel": wheel,
            "peak_rss_kb": peak_rss_kb(),
        }


@dataclass
class ShardRunReport:
    """The merged outcome of a sharded swarm run."""

    workload: dict
    workers: int
    mode: str
    windows: int
    digest: str
    totals: dict
    drops_by_reason: dict
    per_region: dict
    host_checksum: int
    events_fired: int
    per_shard: list = field(default_factory=list)

    @property
    def conservation_ok(self) -> bool:
        """``sent == delivered + dropped + in_flight`` after the merge."""
        totals = self.totals
        return totals["sent"] == (
            totals["delivered"] + totals["dropped"] + totals["in_flight"]
        )

    def wheel_summary(self) -> dict:
        """Aggregate wheel counters across shards (sum; max occupancy)."""
        agg = {"scheduled": 0, "overflow": 0, "batched": 0,
               "batch_drains": 0, "max_occupancy": 0}
        for report in self.per_shard:
            wheel = report["wheel"]
            agg["scheduled"] += wheel["scheduled"]
            agg["overflow"] += wheel["overflow"]
            agg["batched"] += wheel["batched"]
            agg["batch_drains"] += wheel["batch_drains"]
            if wheel["occupancy"] > agg["max_occupancy"]:
                agg["max_occupancy"] = wheel["occupancy"]
        return agg


def _window_cap(workload: SwarmWorkload) -> int:
    """Anti-livelock bound on barrier rounds.

    Sends stop by ``0.8 * horizon``; deliveries, crash rejoins and
    impairment heals all land within a few horizon multiples, so a
    coordinator still moving data past ``8 * horizon + 240`` simulated
    seconds is looping, not finishing.
    """
    return int((workload.horizon * 8.0 + 240.0) / workload.lookahead) + 16


def _work_left(shards: list[ShardWorker], inbox: list[list]) -> bool:
    """Any queued event, undelivered batch or unflushed egress row."""
    if any(shard.loop.pending for shard in shards):
        return True
    if any(inbox):
        return True
    return any(cols[0] for shard in shards for cols in shard.net._egress)


def _merge_reports(
    workload: SwarmWorkload,
    workers: int,
    mode: str,
    windows: int,
    reports: list[dict],
) -> ShardRunReport:
    """Fold per-shard reports into the global, K-invariant digest."""
    totals = {"sent": 0, "delivered": 0, "dropped": 0, "in_flight": 0}
    drops: dict[str, int] = {}
    per_region: dict[str, dict[str, int]] = {}
    checksum = 0
    events_fired = 0
    for report in reports:
        stats = report["stats"]
        for key in totals:
            totals[key] += stats[key]
        for reason, count in stats["drops_by_reason"].items():
            drops[reason] = drops.get(reason, 0) + count
        for region, cell in stats["per_region"].items():
            target = per_region.setdefault(region, {"hosts": 0, "bytes_received": 0})
            target["hosts"] += cell["hosts"]
            target["bytes_received"] += cell["bytes_received"]
        checksum = (checksum + stats["host_checksum"]) & _CHECKSUM_MASK
        events_fired += report["events_fired"]
    payload = {
        "workload": workload.to_dict(),
        "totals": totals,
        "drops_by_reason": dict(sorted(drops.items())),
        "per_region": {region: per_region[region] for region in sorted(per_region)},
        "host_checksum": checksum,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return ShardRunReport(
        workload=workload.to_dict(),
        workers=workers,
        mode=mode,
        windows=windows,
        digest=digest,
        totals=totals,
        drops_by_reason=payload["drops_by_reason"],
        per_region=payload["per_region"],
        host_checksum=checksum,
        events_fired=events_fired,
        per_shard=reports,
    )


def _publish_wheel_stats(reports: list[dict]) -> None:
    """Feed worker wheel snapshots to any absorbing profile sinks.

    Only the multi-process coordinator calls this: inline shards live in
    the observing process, where class-wide sinks already record every
    fired event directly, and absorbing the same counters again would
    double-count.
    """
    sinks = EventLoop._sinks
    if not sinks:
        return
    for report in reports:
        key = f"shard:{report['shard']}"
        for sink in sinks:
            absorb = getattr(sink, "absorb_remote", None)
            if absorb is not None:
                absorb(key, report["wheel"])


def _run_inline(
    workload: SwarmWorkload, workers: int, max_events: int | None
) -> ShardRunReport:
    """Round-robin the shards in-process, one barrier window at a time.

    Bit-identical to the multi-process coordinator (same barriers, same
    batch exchange order), which is what lets DetSan's dispatch trace
    and ``run_all(max_events=N)`` exactness cover sharded runs without
    crossing a process boundary. The ``max_events`` budget is handed
    down window by window; exhausting it with work still queued raises
    the same livelock error :meth:`EventLoop.run_all` would.
    """
    shards = [ShardWorker(workload, shard, workers) for shard in range(workers)]
    lookahead = workload.lookahead
    window_cap = _window_cap(workload)
    inbox: list[list] = [[] for _ in range(workers)]
    remaining = max_events
    windows = 0
    barrier = 0.0
    while True:
        windows += 1
        if windows > window_cap:
            raise RuntimeError(
                f"shard coordinator exceeded {window_cap} windows; likely a livelock"
            )
        # Cumulative, not windows * lookahead: each barrier must equal
        # the previous barrier plus exactly the lookahead float, so a
        # remote arrival at `send + L` can never round below it.
        barrier += lookahead
        for shard in shards:
            batches = inbox[shard.shard_id]
            if batches:
                inbox[shard.shard_id] = []
                shard.net.inject_batches(batches)
            if remaining is None:
                shard.run_window(barrier)
            else:
                remaining -= shard.run_window(barrier, remaining)
                if remaining <= 0 and _work_left(shards, inbox):
                    raise RuntimeError(
                        f"event loop exceeded {max_events} events; likely a livelock"
                    )
        moved = False
        for shard in shards:
            for dst, cols in shard.net.flush_egress().items():
                inbox[dst].append(cols)
                moved = True
        if not moved and not any(shard.loop.pending for shard in shards):
            break
    reports = [shard.final_report() for shard in shards]
    return _merge_reports(workload, workers, "inline", windows, reports)


def _shard_worker_main(conn, workload: SwarmWorkload, shard_id: int, workers: int) -> None:
    """Child-process loop: build the shard, then serve barrier commands."""
    worker = ShardWorker(workload, shard_id, workers)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "run":
                _, barrier, batches = message
                if batches:
                    worker.net.inject_batches(batches)
                worker.run_window(barrier)
                conn.send((worker.net.flush_egress(), worker.loop.pending))
            elif op == "finish":
                conn.send(worker.final_report())
            else:  # "exit"
                break
    finally:
        conn.close()


def _run_processes(workload: SwarmWorkload, workers: int) -> ShardRunReport:
    """Drive one worker process per shard through the window protocol."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context("spawn")
    conns = []
    procs = []
    reports: list[dict] = []
    try:
        for shard in range(workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker_main,
                args=(child_conn, workload, shard, workers),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        lookahead = workload.lookahead
        window_cap = _window_cap(workload)
        inbox: list[list] = [[] for _ in range(workers)]
        windows = 0
        barrier = 0.0
        while True:
            windows += 1
            if windows > window_cap:
                raise RuntimeError(
                    f"shard coordinator exceeded {window_cap} windows; likely a livelock"
                )
            barrier += lookahead  # cumulative: see _run_inline
            for shard, conn in enumerate(conns):
                conn.send(("run", barrier, inbox[shard]))
                inbox[shard] = []
            moved = False
            total_pending = 0
            for conn in conns:
                egress, pending = conn.recv()
                total_pending += pending
                # dict preserves insertion order and workers flush
                # shards ascending, so each inbox accumulates batches in
                # source-shard order — the order inject_batches' stable
                # sort preserves for equal delivery times.
                for dst, cols in egress.items():
                    inbox[dst].append(cols)
                    moved = True
            if not moved and total_pending == 0:
                break
        for conn in conns:
            conn.send(("finish",))
        for conn in conns:
            reports.append(conn.recv())
        for conn in conns:
            conn.send(("exit",))
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
    _publish_wheel_stats(reports)
    return _merge_reports(workload, workers, "process", windows, reports)


def run_workload(
    workload: SwarmWorkload,
    workers: int = 1,
    *,
    max_events: int | None = None,
    inline: bool | None = None,
) -> ShardRunReport:
    """Run ``workload`` across ``workers`` shards; digest is K-invariant.

    ``workers`` clamps to ``[1, len(regions)]`` (a shard with no region
    would idle forever). ``inline=None`` auto-selects: multi-process
    when parallelism can pay, in-process round-robin when the run needs
    one address space — a single worker, an exact ``max_events`` budget,
    an armed dispatch-trace hook (``verify --sanitize``), or
    ``REPRO_SHARD_INLINE=1`` (CI determinism jobs exercise the protocol
    without fork overhead).
    """
    workers = max(1, min(workers, len(workload.regions)))
    if inline is None:
        inline = (
            workers == 1
            or max_events is not None
            or EventLoop._trace is not None
            or os.environ.get("REPRO_SHARD_INLINE", "") == "1"  # repro: allow[DET001] coordinator mode switch, not sim state
        )
    if not inline and max_events is not None:
        raise ConfigurationError(
            "max_events needs the inline coordinator (one address space)"
        )
    if inline:
        return _run_inline(workload, workers, max_events)
    return _run_processes(workload, workers)
