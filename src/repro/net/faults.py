"""Deterministic fault injection: declarative chaos for the simulator.

The paper's interesting security behaviour — segment-pollution recovery,
CDN fallback when P2P delivery dies, IP-leak exposure under peer churn —
shows up when the network *misbehaves*, not in steady state. This module
replaces the single global ``loss_rate`` knob with a declarative
:class:`FaultPlan`: per-link :class:`LinkConditions` (loss, extra
latency, bandwidth throttle), timed link flaps, host crash/rejoin
churn, NAT rebinds with a fresh public mapping, region partitions, and
HTTP service outages. A :class:`FaultInjector` schedules every event on
the existing :class:`~repro.net.clock.EventLoop` and draws only from the
seeded :class:`~repro.util.rand.DeterministicRandom`, so every chaos run
replays byte-identically from its seed.

Plans serialise to plain JSON (:meth:`FaultPlan.to_dict`) and hash to a
stable :meth:`FaultPlan.digest` that run manifests record, so a chaos
result can always be traced back to the exact chaos that produced it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.streaming.http import HttpRequest, HttpResponse
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.net.network import Host, Network


# ---------------------------------------------------------------------------
# link conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkConditions:
    """Impairments applied to one link (or one host's links).

    ``loss`` is an *extra* drop probability on top of the network's
    global rate; ``extra_latency`` adds one-way delay;
    ``bandwidth_bytes_per_sec`` serialises datagrams through a finite
    pipe (concurrent sends queue); ``blocked`` hard-drops everything —
    the flap/partition primitive.
    """

    loss: float = 0.0
    extra_latency: float = 0.0
    bandwidth_bytes_per_sec: float | None = None
    blocked: bool = False

    def stacked(self, other: "LinkConditions") -> "LinkConditions":
        """Combine two overlapping impairments into their joint effect.

        Losses compose as independent drop trials, latencies add, the
        narrower bandwidth wins, and a block from either side blocks.
        """
        if other.bandwidth_bytes_per_sec is None:
            bandwidth = self.bandwidth_bytes_per_sec
        elif self.bandwidth_bytes_per_sec is None:
            bandwidth = other.bandwidth_bytes_per_sec
        else:
            bandwidth = min(self.bandwidth_bytes_per_sec, other.bandwidth_bytes_per_sec)
        if self.loss == 0.0:
            loss = other.loss  # keep zero-loss a bit-exact identity
        elif other.loss == 0.0:
            loss = self.loss
        else:
            loss = 1.0 - (1.0 - self.loss) * (1.0 - other.loss)
        return LinkConditions(
            loss=loss,
            extra_latency=self.extra_latency + other.extra_latency,
            bandwidth_bytes_per_sec=bandwidth,
            blocked=self.blocked or other.blocked,
        )

    def to_dict(self) -> dict:
        """Serialise to plain JSON types."""
        return {
            "loss": self.loss,
            "extra_latency": self.extra_latency,
            "bandwidth_bytes_per_sec": self.bandwidth_bytes_per_sec,
            "blocked": self.blocked,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkConditions":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            loss=float(data.get("loss", 0.0)),
            extra_latency=float(data.get("extra_latency", 0.0)),
            bandwidth_bytes_per_sec=data.get("bandwidth_bytes_per_sec"),
            blocked=bool(data.get("blocked", False)),
        )


#: No impairment at all — the identity for :meth:`LinkConditions.stacked`.
CLEAR = LinkConditions()


# ---------------------------------------------------------------------------
# fault events
# ---------------------------------------------------------------------------

_EVENT_KINDS: dict[str, type] = {}


def _event(kind: str) -> Callable[[type], type]:
    """Class decorator registering a fault event under its wire name."""

    def register(cls: type) -> type:
        cls.kind = kind
        _EVENT_KINDS[kind] = cls  # repro: allow[SHARD001] decorator runs at import; read-only at runtime
        return cls

    return register


@dataclass(frozen=True)
class FaultEvent:
    """Base of every plan entry: something happens ``at`` seconds in."""

    at: float

    kind = "abstract"

    def to_dict(self) -> dict:
        """Serialise: the registered kind plus this event's own fields."""
        out: dict = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, LinkConditions):
                value = value.to_dict()
            out[spec.name] = value
        return out

    @staticmethod
    def from_dict(data: dict) -> "FaultEvent":
        """Rebuild any registered event kind from its dict form."""
        data = dict(data)
        kind = data.pop("kind", None)
        cls = _EVENT_KINDS.get(kind)
        if cls is None:
            known = ", ".join(sorted(_EVENT_KINDS))
            raise ConfigurationError(f"unknown fault kind {kind!r} (known: {known})")
        if "conditions" in data and isinstance(data["conditions"], dict):
            data["conditions"] = LinkConditions.from_dict(data["conditions"])
        return cls(**data)


@_event("link_flap")
@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """Both directions between hosts ``a`` and ``b`` go dark, then heal."""

    a: str = ""
    b: str = ""
    duration: float = 1.0


@_event("degrade")
@dataclass(frozen=True)
class Degrade(FaultEvent):
    """Impair the ``a``–``b`` link (or every link of ``a`` if ``b`` is None)."""

    a: str = ""
    b: str | None = None
    duration: float = 1.0
    conditions: LinkConditions = field(default_factory=LinkConditions)


@_event("host_crash")
@dataclass(frozen=True)
class HostCrash(FaultEvent):
    """Host leaves the network; with ``down_for`` set it rejoins later."""

    host: str = ""
    down_for: float | None = None


@_event("nat_rebind")
@dataclass(frozen=True)
class NatRebind(FaultEvent):
    """The host's NAT gets a fresh external address; all mappings void."""

    host: str = ""


@_event("partition")
@dataclass(frozen=True)
class Partition(FaultEvent):
    """All traffic between two regions is dropped until the heal."""

    region_a: str = ""
    region_b: str = ""
    duration: float = 1.0


@_event("service_outage")
@dataclass(frozen=True)
class ServiceOutage(FaultEvent):
    """An HTTP service (CDN edge, tracker) answers 503 for a window."""

    hostname: str = ""
    duration: float = 1.0


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


@dataclass
class FaultPlan:
    """A named, ordered, serialisable schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()
    name: str = "custom"

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=lambda e: (e.at, e.kind)))
        for event in events:
            if event.at < 0:
                raise ConfigurationError(f"fault event scheduled in the past: {event}")
        self.events = events

    def to_dict(self) -> dict:
        """Serialise to plain JSON types (the manifest/digest form)."""
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", [])),
            name=str(data.get("name", "custom")),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan previously written with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — recorded in run manifests."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# churn notifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultNotice:
    """One applied (or healed) fault, broadcast to registered listeners.

    ``public_ips`` carries the affected host's public addresses so
    listeners (the PDN SDK) can match churned peers against the remote
    endpoints of their WebRTC links without reaching into the network.
    """

    at: float
    kind: str  # host_down | host_up | nat_rebind | link_down | link_up | ...
    host: str = ""
    public_ips: tuple[str, ...] = ()
    detail: str = ""


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------


def _pair_key(a: str, b: str) -> tuple[str, str]:
    """Canonical symmetric key for a host-name pair."""
    return (a, b) if a <= b else (b, a)


class FaultInjector:
    """Arms fault plans on a network and answers its per-datagram queries.

    Install one per :class:`~repro.net.network.Network` (the constructor
    wires ``network.faults``). :meth:`arm` schedules every plan event on
    the network's event loop, relative to the current simulated time;
    the network then consults :meth:`host_is_down` and
    :meth:`conditions_for` on each datagram. All randomness (the extra
    per-link loss trials) comes from a fork of the network's seeded
    stream, so chaos runs replay exactly.
    """

    def __init__(
        self,
        network: "Network",
        rand: DeterministicRandom | None = None,
        urlspace=None,
    ) -> None:
        if network.faults is not None:
            raise ConfigurationError("network already has a fault injector")
        self.network = network
        self.loop = network.loop
        self.rand = (rand or network.rand).fork("faults")
        self.urlspace = urlspace
        self.plans: list[FaultPlan] = []
        self.log: list[FaultNotice] = []
        self.events_applied = 0
        self._listeners: list[Callable[[FaultNotice], None]] = []
        # active impairments, each a stack so overlapping windows nest
        self._link_conditions: dict[tuple[str, str], list[LinkConditions]] = {}
        self._host_conditions: dict[str, list[LinkConditions]] = {}
        self._down_hosts: set[str] = set()
        self._down_ips: set[str] = set()
        self._partitions: dict[tuple[str, str], int] = {}
        self._outages: dict[str, int] = {}
        self._link_busy: dict[tuple[str, str], float] = {}
        network.faults = self
        if urlspace is not None:
            urlspace.add_interceptor(self._intercept_http)

    # -- plan arming -----------------------------------------------------

    def arm(self, plan: FaultPlan) -> "FaultInjector":
        """Schedule every event of ``plan`` relative to the loop's now."""
        self.plans.append(plan)
        for event in plan.events:
            self.loop.schedule(event.at, self._apply, event)
        return self

    def add_listener(self, listener: Callable[[FaultNotice], None]) -> None:
        """Register a churn-notification callback (SDKs, players, tests)."""
        self._listeners.append(listener)

    def _emit(self, kind: str, host: str = "", public_ips: tuple[str, ...] = (),
              detail: str = "") -> None:
        notice = FaultNotice(self.loop.now, kind, host, public_ips, detail)
        self.log.append(notice)
        for listener in list(self._listeners):
            listener(notice)

    # -- event application -----------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.events_applied += 1
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)

    def _host(self, name: str) -> "Host | None":
        for host in self.network.hosts.values():
            if host.name == name:
                return host
        return None

    def _apply_link_flap(self, event: LinkFlap) -> None:
        key = _pair_key(event.a, event.b)
        blocked = LinkConditions(blocked=True)
        self._link_conditions.setdefault(key, []).append(blocked)
        self._emit("link_down", detail=f"{event.a}<->{event.b}")
        self.loop.schedule(event.duration, self._heal_link, key, blocked,
                           f"{event.a}<->{event.b}")

    def _heal_link(self, key: tuple[str, str], conditions: LinkConditions,
                   detail: str) -> None:
        stack = self._link_conditions.get(key, [])
        if conditions in stack:
            stack.remove(conditions)
        if not stack:
            self._link_conditions.pop(key, None)
        self._emit("link_up", detail=detail)

    def _apply_degrade(self, event: Degrade) -> None:
        if event.b is None:
            self._host_conditions.setdefault(event.a, []).append(event.conditions)
            self._emit("degrade", host=event.a, detail="all links")
            self.loop.schedule(event.duration, self._heal_degrade_host,
                               event.a, event.conditions)
        else:
            key = _pair_key(event.a, event.b)
            self._link_conditions.setdefault(key, []).append(event.conditions)
            self._emit("degrade", detail=f"{event.a}<->{event.b}")
            self.loop.schedule(event.duration, self._heal_link, key,
                               event.conditions, f"{event.a}<->{event.b}")

    def _heal_degrade_host(self, name: str, conditions: LinkConditions) -> None:
        stack = self._host_conditions.get(name, [])
        if conditions in stack:
            stack.remove(conditions)
        if not stack:
            self._host_conditions.pop(name, None)
        self._emit("degrade_healed", host=name)

    def _apply_host_crash(self, event: HostCrash) -> None:
        host = self._host(event.host)
        if host is None:
            self._emit("skipped", host=event.host, detail="unknown host")
            return
        self._down_hosts.add(host.name)
        self._down_ips.add(host.public_ip)
        # A crashed box loses its queued uplink backlog: without this, a
        # rejoining host would inherit phantom serialisation delay from
        # datagrams queued before it died.
        host._uplink_busy_until = 0.0
        self._emit("host_down", host=host.name, public_ips=(host.public_ip,))
        if event.down_for is not None:
            self.loop.schedule(event.down_for, self._rejoin_host, host.name)

    def _rejoin_host(self, name: str) -> None:
        host = self._host(name)
        self._down_hosts.discard(name)
        if host is not None:
            self._down_ips.discard(host.public_ip)
            self._emit("host_up", host=name, public_ips=(host.public_ip,))
        else:
            self._emit("host_up", host=name)

    def _apply_nat_rebind(self, event: NatRebind) -> None:
        host = self._host(event.host)
        if host is None or host.nat is None:
            self._emit("skipped", host=event.host, detail="no NAT to rebind")
            return
        old_ip, new_ip = self.network.rebind_nat(host.nat)
        if old_ip in self._down_ips:
            self._down_ips.discard(old_ip)
            self._down_ips.add(new_ip)
        self._emit("nat_rebind", host=host.name, public_ips=(old_ip, new_ip),
                   detail=f"{old_ip} -> {new_ip}")

    def _apply_partition(self, event: Partition) -> None:
        key = _pair_key(event.region_a, event.region_b)
        self._partitions[key] = self._partitions.get(key, 0) + 1
        self._emit("partition", detail=f"{key[0]}|{key[1]}")
        self.loop.schedule(event.duration, self._heal_partition, key)

    def _heal_partition(self, key: tuple[str, str]) -> None:
        count = self._partitions.get(key, 0) - 1
        if count <= 0:
            self._partitions.pop(key, None)
        else:
            self._partitions[key] = count
        self._emit("heal", detail=f"{key[0]}|{key[1]}")

    def _apply_service_outage(self, event: ServiceOutage) -> None:
        hostname = event.hostname.lower()
        self._outages[hostname] = self._outages.get(hostname, 0) + 1
        self._emit("outage", detail=hostname)
        self.loop.schedule(event.duration, self._heal_outage, hostname)

    def _heal_outage(self, hostname: str) -> None:
        count = self._outages.get(hostname, 0) - 1
        if count <= 0:
            self._outages.pop(hostname, None)
        else:
            self._outages[hostname] = count
        self._emit("outage_healed", detail=hostname)

    # -- network-facing queries ------------------------------------------

    def host_is_down(self, host: "Host") -> bool:
        """True while a crash window covers ``host``."""
        return bool(self._down_hosts) and host.name in self._down_hosts

    def conditions_for(self, src: "Host", dst: "Host | None") -> LinkConditions | None:
        """The stacked impairment for one datagram, or None when clear."""
        if not (self._link_conditions or self._host_conditions or self._partitions):
            return None
        combined: LinkConditions | None = None
        for stack in (
            self._host_conditions.get(src.name),
            self._host_conditions.get(dst.name) if dst is not None else None,
            self._link_conditions.get(_pair_key(src.name, dst.name))
            if dst is not None
            else None,
        ):
            if stack:
                for conditions in stack:
                    combined = conditions if combined is None else combined.stacked(conditions)
        if (
            self._partitions
            and dst is not None
            and src.region is not None
            and dst.region is not None
            and src.region != dst.region
            and _pair_key(src.region, dst.region) in self._partitions
        ):
            blocked = LinkConditions(blocked=True)
            combined = blocked if combined is None else combined.stacked(blocked)
        return combined

    def link_queue_delay(self, src: "Host", dst: "Host", size: int,
                         conditions: LinkConditions) -> float:
        """Serialisation + queueing through a throttled link."""
        rate = conditions.bandwidth_bytes_per_sec
        if rate is None or rate <= 0:
            return 0.0
        key = _pair_key(src.name, dst.name)
        start = max(self.loop.now, self._link_busy.get(key, 0.0))
        self._link_busy[key] = start + size / rate
        return self._link_busy[key] - self.loop.now

    # -- HTTP interception -----------------------------------------------

    def _intercept_http(self, request: HttpRequest) -> HttpResponse | None:
        """503 requests into an outage window or from a crashed client."""
        if self._outages and self._outages.get(request.host.lower()):
            return HttpResponse(503, b"service unavailable (fault injection)")
        if self._down_ips and request.client_ip in self._down_ips:
            return HttpResponse(503, b"client offline (fault injection)")
        return None


def bind_viewer(injector: FaultInjector, host: "Host", sdk=None, player=None) -> None:
    """Wire one viewer's SDK and player into the churn notifications.

    The SDK evicts churned neighbors and re-validates paths after its
    own NAT rebinds; the player is nudged to re-drive fetching when the
    viewer's host rejoins or an HTTP outage heals (its retry timers are
    already pending — the nudge just avoids waiting a full backoff).
    """
    if sdk is not None:
        sdk.attach_faults(injector)
    if player is not None:

        def on_notice(notice: FaultNotice, _player=player, _name=host.name) -> None:
            """Re-drive the player's fetch pipeline after a heal."""
            if notice.kind == "host_up" and notice.host == _name:
                _player.nudge()
            elif notice.kind == "outage_healed":
                _player.nudge()

        injector.add_listener(on_notice)


# ---------------------------------------------------------------------------
# plan generation: seeded random chaos and named presets
# ---------------------------------------------------------------------------


class RandomFaultPlanner:
    """Seeded generator of random-but-reproducible fault plans.

    Both the ``repro chaos`` presets and the property-based test
    generators build on this, so "a random plan at seed S" means the
    same thing everywhere.
    """

    def __init__(self, rand: DeterministicRandom) -> None:
        self.rand = rand

    def _times(self, count: int, horizon: float) -> list[float]:
        return sorted(round(self.rand.uniform(0.0, horizon * 0.8), 3) for _ in range(count))

    def churn(self, hosts: Sequence[str], horizon: float, intensity: float = 1.0) -> FaultPlan:
        """Crash/rejoin cycles plus NAT rebinds across the host set."""
        events: list[FaultEvent] = []
        if hosts:
            count = max(1, int(len(hosts) * intensity * 0.5))
            for at in self._times(count, horizon):
                host = self.rand.choice(list(hosts))
                if self.rand.random() < 0.35:
                    events.append(NatRebind(at=at, host=host))
                else:
                    down_for = round(self.rand.uniform(horizon * 0.05, horizon * 0.3), 3)
                    events.append(HostCrash(at=at, host=host, down_for=down_for))
        return FaultPlan(tuple(events), name="churn")

    def flaky(self, hosts: Sequence[str], horizon: float, intensity: float = 1.0) -> FaultPlan:
        """Lossy, slow, throttled links plus occasional hard flaps."""
        events: list[FaultEvent] = []
        if len(hosts) >= 2:
            count = max(1, int(len(hosts) * intensity))
            for at in self._times(count, horizon):
                a, b = self.rand.sample(list(hosts), 2)
                duration = round(self.rand.uniform(horizon * 0.1, horizon * 0.4), 3)
                if self.rand.random() < 0.25:
                    events.append(LinkFlap(at=at, a=a, b=b, duration=duration))
                else:
                    conditions = LinkConditions(
                        loss=round(self.rand.uniform(0.05, 0.6), 3),
                        extra_latency=round(self.rand.uniform(0.0, 0.25), 3),
                        bandwidth_bytes_per_sec=(
                            float(self.rand.randint(20_000, 200_000))
                            if self.rand.random() < 0.5
                            else None
                        ),
                    )
                    events.append(Degrade(at=at, a=a, b=b, duration=duration,
                                          conditions=conditions))
        return FaultPlan(tuple(events), name="flaky")

    def partitions(self, regions: Sequence[str], horizon: float) -> FaultPlan:
        """Split/heal cycles between region pairs."""
        events: list[FaultEvent] = []
        if len(regions) >= 2:
            for at in self._times(max(1, len(regions) - 1), horizon):
                region_a, region_b = self.rand.sample(list(regions), 2)
                duration = round(self.rand.uniform(horizon * 0.1, horizon * 0.3), 3)
                events.append(Partition(at=at, region_a=region_a, region_b=region_b,
                                        duration=duration))
        return FaultPlan(tuple(events), name="partition")

    def blackout(self, hostnames: Sequence[str], horizon: float) -> FaultPlan:
        """Short HTTP outages against infrastructure hostnames."""
        events: list[FaultEvent] = []
        for hostname in hostnames:
            at = round(self.rand.uniform(0.0, horizon * 0.5), 3)
            duration = round(self.rand.uniform(horizon * 0.05, horizon * 0.2), 3)
            events.append(ServiceOutage(at=at, hostname=hostname, duration=duration))
        return FaultPlan(tuple(events), name="blackout")

    def chaos_mix(
        self,
        hosts: Sequence[str],
        horizon: float,
        regions: Sequence[str] = (),
        hostnames: Sequence[str] = (),
        intensity: float = 1.0,
    ) -> FaultPlan:
        """Everything at once: churn + flaky links + partitions + outages."""
        events: list[FaultEvent] = []
        events.extend(self.churn(hosts, horizon, intensity).events)
        events.extend(self.flaky(hosts, horizon, intensity).events)
        events.extend(self.partitions(list(regions), horizon).events)
        events.extend(self.blackout(list(hostnames), horizon).events)
        return FaultPlan(tuple(events), name="chaos-mix")


#: Named presets resolvable by ``repro chaos --faults NAME``. Each maps
#: the experiment's topology (hosts/regions/hostnames) through a seeded
#: :class:`RandomFaultPlanner`.
PLAN_PRESETS: dict[str, Callable[..., FaultPlan]] = {
    "calm": lambda planner, hosts, horizon, regions, hostnames: FaultPlan((), name="calm"),
    "churn": lambda planner, hosts, horizon, regions, hostnames: planner.churn(hosts, horizon),
    "flaky": lambda planner, hosts, horizon, regions, hostnames: planner.flaky(hosts, horizon),
    "partition": lambda planner, hosts, horizon, regions, hostnames: planner.partitions(
        regions, horizon
    ),
    "blackout": lambda planner, hosts, horizon, regions, hostnames: planner.blackout(
        hostnames, horizon
    ),
    "chaos-mix": lambda planner, hosts, horizon, regions, hostnames: planner.chaos_mix(
        hosts, horizon, regions, hostnames
    ),
}


def load_plan(
    spec: str,
    *,
    planner: RandomFaultPlanner | None = None,
    hosts: Iterable[str] = (),
    horizon: float = 60.0,
    regions: Iterable[str] = (),
    hostnames: Iterable[str] = (),
) -> FaultPlan:
    """Resolve ``--faults SPEC``: a preset name or a JSON plan file.

    A spec naming an existing file (or ending in ``.json``) is parsed
    as an explicit :class:`FaultPlan`; otherwise it must be one of
    :data:`PLAN_PRESETS`, instantiated against the given topology with
    the given seeded planner.
    """
    path = Path(spec)
    if spec.endswith(".json") or path.exists():
        try:
            plan = FaultPlan.from_json(path.read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {spec!r}: {exc}") from exc
        return replace(plan, name=plan.name if plan.name != "custom" else path.stem)
    preset = PLAN_PRESETS.get(spec)
    if preset is None:
        known = ", ".join(sorted(PLAN_PRESETS))
        raise ConfigurationError(f"unknown fault plan {spec!r} (presets: {known})")
    if planner is None:
        raise ConfigurationError(f"preset {spec!r} needs a seeded planner")
    return preset(planner, list(hosts), horizon, list(regions), list(hostnames))
