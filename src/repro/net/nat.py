"""Network address translation boxes.

PDN peers overwhelmingly sit behind NATs; the whole reason WebRTC
exchanges candidate addresses over STUN is NAT traversal, and the
paper's in-the-wild harvest even observes *translation artifacts*
(private/shared/reserved source addresses leaking into candidate
exchanges). This module models the four classic NAT behaviours so the
ICE layer, the leak experiment, and the TURN fallback all face the same
constraints real peers do.
"""

from __future__ import annotations

import enum
import itertools

from repro.net.addresses import Endpoint
from repro.util.errors import ConfigurationError, NetworkError


class NatType(enum.Enum):
    """Classic NAT mapping/filtering behaviours (RFC 3489 taxonomy)."""

    FULL_CONE = "full_cone"
    RESTRICTED_CONE = "restricted_cone"
    PORT_RESTRICTED_CONE = "port_restricted_cone"
    SYMMETRIC = "symmetric"


class NatBox:
    """One NAT gateway with an external IP and a pool of mapped ports.

    Hosts attached to the box get addresses in its private subnet; the
    network layer calls :meth:`outbound` when such a host sends, and
    :meth:`inbound` when a datagram arrives at the external address.
    """

    def __init__(
        self,
        external_ip: str,
        nat_type: NatType = NatType.PORT_RESTRICTED_CONE,
        subnet_prefix: str = "192.168.1",
        port_base: int = 40000,
    ) -> None:
        self.external_ip = external_ip
        self.nat_type = nat_type
        self.subnet_prefix = subnet_prefix
        self._port_counter = itertools.count(port_base)
        self._host_counter = itertools.count(2)  # .1 is the gateway itself
        # cone NATs: one mapping per internal endpoint
        self._cone_map: dict[Endpoint, int] = {}
        self._cone_reverse: dict[int, Endpoint] = {}
        # which remotes each external port has contacted (for filtering)
        self._permissions: dict[int, set[Endpoint]] = {}
        # symmetric NATs: one mapping per (internal, remote) pair
        self._sym_map: dict[tuple[Endpoint, Endpoint], int] = {}
        self._sym_reverse: dict[int, tuple[Endpoint, Endpoint]] = {}

    def allocate_internal_ip(self) -> str:
        """Hand out the next private address in this NAT's subnet."""
        host_part = next(self._host_counter)
        if host_part > 254:
            raise NetworkError(f"NAT subnet {self.subnet_prefix}.0/24 exhausted")
        return f"{self.subnet_prefix}.{host_part}"

    # -- translation -----------------------------------------------------

    def outbound(self, internal: Endpoint, remote: Endpoint) -> Endpoint:
        """Translate an outgoing datagram's source address.

        Creates (or reuses) the mapping and records the remote as a
        permitted return path for filtering purposes.
        """
        if self.nat_type is NatType.SYMMETRIC:
            key = (internal, remote)
            if key not in self._sym_map:
                port = next(self._port_counter)
                self._sym_map[key] = port
                self._sym_reverse[port] = key
            port = self._sym_map[key]
        else:
            if internal not in self._cone_map:
                port = next(self._port_counter)
                self._cone_map[internal] = port
                self._cone_reverse[port] = internal
            port = self._cone_map[internal]
        self._permissions.setdefault(port, set()).add(remote)
        return Endpoint(self.external_ip, port)

    def inbound(self, external_port: int, remote: Endpoint) -> Endpoint | None:
        """Translate an incoming datagram, or None if filtered.

        Applies the filtering rule for this NAT type: full cone forwards
        anything to a mapped port; restricted cone requires the internal
        host to have previously sent to the remote *IP*; port-restricted
        requires the exact remote *(IP, port)*; symmetric requires the
        exact remote the mapping was created for.
        """
        if self.nat_type is NatType.SYMMETRIC:
            entry = self._sym_reverse.get(external_port)
            if entry is None:
                return None
            internal, mapped_remote = entry
            if remote != mapped_remote:
                return None
            return internal

        internal = self._cone_reverse.get(external_port)
        if internal is None:
            return None
        if self.nat_type is NatType.FULL_CONE:
            return internal
        permitted = self._permissions.get(external_port, set())
        if self.nat_type is NatType.RESTRICTED_CONE:
            if any(p.ip == remote.ip for p in permitted):
                return internal
            return None
        if self.nat_type is NatType.PORT_RESTRICTED_CONE:
            return internal if remote in permitted else None
        raise ConfigurationError(f"unknown NAT type {self.nat_type}")  # pragma: no cover

    def rebind(self, new_external_ip: str) -> str:
        """Take a fresh external address and void every active mapping.

        Models a DHCP lease expiry or carrier-grade renumbering: the
        translation state real flows depended on is simply gone, so
        established WebRTC paths break until the peers re-punch (a new
        outbound datagram creates a new mapping at the new address).
        Returns the previous external IP.
        """
        old_ip, self.external_ip = self.external_ip, new_external_ip
        self._cone_map.clear()
        self._cone_reverse.clear()
        self._permissions.clear()
        self._sym_map.clear()
        self._sym_reverse.clear()
        return old_ip

    def mapping_count(self) -> int:
        """Number of active port mappings (diagnostics)."""
        return len(self._cone_map) + len(self._sym_map)
