"""IPv4 endpoints and address classification.

The paper's in-the-wild IP-leak analysis (§IV-D) classifies harvested
addresses into public IPs and *bogons* — private (RFC 1918), shared
CGNAT space (RFC 6598), and reserved ranges. :func:`classify_ip`
implements exactly that taxonomy so the leak experiment can reproduce
the paper's 7,159-public / 581-bogon split.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.util.errors import ConfigurationError


class Endpoint(NamedTuple):
    """An (ip, port) transport address."""

    ip: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.ip}:{self.port}"


class IpClass(enum.Enum):
    """Coarse address classes used in the leak analysis."""

    PUBLIC = "public"
    PRIVATE = "private"  # RFC 1918
    SHARED_NAT = "shared_nat"  # RFC 6598 (100.64.0.0/10), used by carrier NAT
    RESERVED = "reserved"  # loopback, link-local, 240/4, 0/8, multicast


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad IPv4 into an int, validating each octet."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ConfigurationError(f"invalid IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ConfigurationError(f"invalid IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ConfigurationError(f"invalid IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit int as dotted-quad IPv4."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ConfigurationError(f"ip int out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _in_block(value: int, network: str, prefix_len: int) -> bool:
    base = ip_to_int(network)
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    return (value & mask) == base


_PRIVATE_BLOCKS = [("10.0.0.0", 8), ("172.16.0.0", 12), ("192.168.0.0", 16)]
_RESERVED_BLOCKS = [
    ("0.0.0.0", 8),
    ("127.0.0.0", 8),
    ("169.254.0.0", 16),
    ("192.0.2.0", 24),
    ("198.51.100.0", 24),
    ("203.0.113.0", 24),
    ("224.0.0.0", 4),
    ("240.0.0.0", 4),
]


def classify_ip(ip: str) -> IpClass:
    """Classify an IPv4 address per the paper's bogon taxonomy."""
    value = ip_to_int(ip)
    for network, prefix in _PRIVATE_BLOCKS:
        if _in_block(value, network, prefix):
            return IpClass.PRIVATE
    if _in_block(value, "100.64.0.0", 10):
        return IpClass.SHARED_NAT
    for network, prefix in _RESERVED_BLOCKS:
        if _in_block(value, network, prefix):
            return IpClass.RESERVED
    return IpClass.PUBLIC


def is_bogon(ip: str) -> bool:
    """True for any non-public (private/shared/reserved) address."""
    return classify_ip(ip) is not IpClass.PUBLIC
