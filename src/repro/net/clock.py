"""Discrete-event simulation clock.

Everything time-dependent in the simulator — datagram delivery, player
ticks, resource-monitor sampling, viewer churn — is driven by one
:class:`EventLoop`. Time is a float in seconds; events at equal times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.util.errors import ConfigurationError


class TimerHandle:
    """Handle returned by :meth:`EventLoop.schedule`; supports cancel()."""

    __slots__ = ("when", "callback", "args", "cancelled")

    def __init__(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel."""
        self.cancelled = True


class EventLoop:
    """A heap-based discrete-event scheduler."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._events_fired = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise ConfigurationError(f"cannot schedule at {when} < now {self.now}")
        handle = TimerHandle(when, callback, args)
        heapq.heappush(self._heap, (when, next(self._seq), handle))
        return handle

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
    ) -> TimerHandle:
        """Schedule a repeating callback every ``interval`` seconds.

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole chain (each tick checks the shared cancelled flag).
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        first = TimerHandle(self.now + interval, callback, args)

        def tick() -> None:
            """Tick."""
            if first.cancelled:
                return
            if until is not None and self.now > until:
                return
            callback(*args)
            self.schedule(interval, tick)

        heapq.heappush(self._heap, (first.when, next(self._seq), TimerHandle(first.when, tick, ())))
        return first

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is empty."""
        while self._heap:
            when, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = when
            handle.callback(*handle.args)
            self._events_fired += 1
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire all events scheduled at or before ``deadline``."""
        while self._heap:
            when, _, handle = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = when
            handle.callback(*handle.args)
            self._events_fired += 1
        self.now = max(self.now, deadline)

    def run(self, duration: float) -> None:
        """Advance the clock ``duration`` seconds, firing due events."""
        self.run_until(self.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded to catch runaway loops)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"event loop exceeded {max_events} events; likely a livelock")

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def events_fired(self) -> int:
        """Events fired."""
        return self._events_fired
