"""Discrete-event simulation clock.

Everything time-dependent in the simulator — datagram delivery, player
ticks, resource-monitor sampling, viewer churn — is driven by one
:class:`EventLoop`. Time is a float in seconds; events at equal times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic.

Observability: sinks registered via :meth:`EventLoop.add_sink` are
notified after every fired event (see :mod:`repro.harness.profile`).
Sinks are class-wide so a harness can observe every loop an experiment
creates; they must only observe, never schedule.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, ClassVar

from repro.util.errors import ConfigurationError


class TimerHandle:
    """Handle returned by :meth:`EventLoop.schedule`; supports cancel()."""

    __slots__ = ("when", "callback", "args", "cancelled")

    def __init__(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event cancelled; the loop skips it when it surfaces."""
        self.cancelled = True


class RepeatingHandle(TimerHandle):
    """Handle for one :meth:`EventLoop.call_every` chain.

    Unlike a plain :class:`TimerHandle`, this handle *is* the entry in
    the loop's heap: after each tick it re-inserts itself, advancing
    :attr:`when` to the next occurrence. ``cancel()`` therefore stops
    the chain directly, and the loop's ``pending`` count sees exactly
    one entry per repeating timer.
    """

    __slots__ = ("interval", "until")

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple,
        interval: float,
        until: float | None,
    ) -> None:
        super().__init__(when, callback, args)
        self.interval = interval
        self.until = until

    def _fire(self, loop: "EventLoop") -> None:
        """Run one tick and reschedule the next occurrence."""
        if self.until is not None and loop.now > self.until:
            return
        self.callback(*self.args)
        if self.cancelled:  # the callback may cancel its own chain
            return
        self.when = loop.now + self.interval
        heapq.heappush(loop._heap, (self.when, next(loop._seq), self))


class EventLoop:
    """A heap-based discrete-event scheduler."""

    #: Class-wide observer sinks (see :mod:`repro.harness.profile`). A
    #: tuple so the hot-path emptiness check is a plain truthiness test.
    _sinks: ClassVar[tuple] = ()

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._events_fired = 0

    # -- instrumentation -------------------------------------------------

    @classmethod
    def add_sink(cls, sink: Any) -> None:
        """Register an observer notified as ``sink.record(loop, handle)``."""
        cls._sinks = cls._sinks + (sink,)

    @classmethod
    def remove_sink(cls, sink: Any) -> None:
        """Unregister a sink previously passed to :meth:`add_sink`."""
        cls._sinks = tuple(s for s in cls._sinks if s is not sink)

    def _dispatch(self, handle: TimerHandle) -> None:
        """Fire one handle and notify any registered sinks."""
        if isinstance(handle, RepeatingHandle):
            handle._fire(self)
        else:
            handle.callback(*handle.args)
        self._events_fired += 1
        if EventLoop._sinks:
            for sink in EventLoop._sinks:
                sink.record(self, handle)

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise ConfigurationError(f"cannot schedule at {when} < now {self.now}")
        handle = TimerHandle(when, callback, args)
        heapq.heappush(self._heap, (when, next(self._seq), handle))
        return handle

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
    ) -> RepeatingHandle:
        """Schedule a repeating callback every ``interval`` seconds.

        Returns the :class:`RepeatingHandle` driving the chain: its
        ``when`` always points at the next occurrence, and ``cancel()``
        stops the repetition. A tick scheduled past ``until`` fires
        nothing and ends the chain.
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        handle = RepeatingHandle(self.now + interval, callback, args, interval, until)
        heapq.heappush(self._heap, (handle.when, next(self._seq), handle))
        return handle

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is empty."""
        while self._heap:
            when, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = when
            self._dispatch(handle)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire all events scheduled at or before ``deadline``."""
        while self._heap:
            when, _, handle = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = when
            self._dispatch(handle)
        self.now = max(self.now, deadline)

    def run(self, duration: float) -> None:
        """Advance the clock ``duration`` seconds, firing due events."""
        self.run_until(self.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded to catch runaway loops)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"event loop exceeded {max_events} events; likely a livelock")

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def events_fired(self) -> int:
        """Total events this loop has fired since construction."""
        return self._events_fired
