"""Discrete-event simulation clock.

Everything time-dependent in the simulator — datagram delivery, player
ticks, resource-monitor sampling, viewer churn — is driven by one
:class:`EventLoop`. Time is a float in seconds; events at equal times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic.

The loop is the hottest code in the simulator (million-datagram swarms
fire one event per delivery), so the dispatch path is deliberately
flat: ``step``/``run_until`` pop and fire inline rather than through
helper calls, and :attr:`EventLoop.pending` is an O(1) counter
maintained by ``schedule``/``cancel``/dispatch instead of a heap scan.

Observability: sinks registered via :meth:`EventLoop.add_sink` are
notified after every fired event (see :mod:`repro.harness.profile`).
Sinks are class-wide so a harness can observe every loop an experiment
creates; they must only observe, never schedule.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, ClassVar

from repro.util.errors import ConfigurationError


class TimerHandle:
    """Handle returned by :meth:`EventLoop.schedule`; supports cancel()."""

    __slots__ = ("when", "callback", "args", "cancelled", "_loop")

    #: Class flag the dispatch path branches on instead of isinstance().
    _repeating = False

    def __init__(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        # The loop whose heap currently holds this handle; None once the
        # handle is popped (or never queued). Lets cancel() keep the
        # loop's live-event counter exact without a heap scan.
        self._loop: "EventLoop | None" = None

    def cancel(self) -> None:
        """Mark the event cancelled; the loop skips it when it surfaces."""
        if self.cancelled:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._live -= 1
            self._loop = None


class RepeatingHandle(TimerHandle):
    """Handle for one :meth:`EventLoop.call_every` chain.

    Unlike a plain :class:`TimerHandle`, this handle *is* the entry in
    the loop's heap: after each tick it re-inserts itself, advancing
    :attr:`when` to the next occurrence. ``cancel()`` therefore stops
    the chain directly, and the loop's ``pending`` count sees exactly
    one entry per repeating timer.
    """

    __slots__ = ("interval", "until")

    _repeating = True

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple,
        interval: float,
        until: float | None,
    ) -> None:
        super().__init__(when, callback, args)
        self.interval = interval
        self.until = until

    def _fire(self, loop: "EventLoop") -> None:
        """Run one tick and reschedule the next occurrence."""
        if self.until is not None and loop.now > self.until:
            return
        self.callback(*self.args)
        if self.cancelled:  # the callback may cancel its own chain
            return
        self.when = loop.now + self.interval
        self._loop = loop
        loop._live += 1
        heappush(loop._heap, (self.when, next(loop._seq), self))


class EventLoop:
    """A heap-based discrete-event scheduler."""

    #: Class-wide observer sinks (see :mod:`repro.harness.profile`). A
    #: tuple so the hot-path emptiness check is a plain truthiness test.
    _sinks: ClassVar[tuple] = ()

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._events_fired = 0
        #: Not-yet-cancelled entries in the heap — the O(1) source of
        #: :attr:`pending`, maintained by push/cancel/pop.
        self._live = 0

    # -- instrumentation -------------------------------------------------

    @classmethod
    def add_sink(cls, sink: Any) -> None:
        """Register an observer notified as ``sink.record(loop, handle)``."""
        cls._sinks = cls._sinks + (sink,)

    @classmethod
    def remove_sink(cls, sink: Any) -> None:
        """Unregister a sink previously passed to :meth:`add_sink`."""
        cls._sinks = tuple(s for s in cls._sinks if s is not sink)

    # -- scheduling ------------------------------------------------------

    def _push(self, handle: TimerHandle) -> None:
        """Queue ``handle`` and account for it in the live counter."""
        handle._loop = self
        self._live += 1
        heappush(self._heap, (handle.when, next(self._seq), handle))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        handle = TimerHandle(self.now + delay, callback, args)
        self._push(handle)
        return handle

    def schedule_fast(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        """Trusted fast path for hot callers: anonymous, not cancellable.

        The network data plane schedules one delivery per datagram; this
        skips :meth:`schedule`'s bounds check and the whole
        :class:`TimerHandle` allocation — the heap entry itself becomes
        a ``(when, seq, callback, args)`` 4-tuple the dispatch paths
        special-case by length (one container allocation per event
        instead of two, which also halves this path's GC pressure). The
        caller guarantees ``when >= now`` and gets no handle back, so
        the event cannot be cancelled (in-flight datagrams never are;
        faults drop at delivery time instead).
        """
        self._live += 1
        heappush(self._heap, (when, next(self._seq), callback, args))

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise ConfigurationError(f"cannot schedule at {when} < now {self.now}")
        handle = TimerHandle(when, callback, args)
        self._push(handle)
        return handle

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
    ) -> RepeatingHandle:
        """Schedule a repeating callback every ``interval`` seconds.

        Returns the :class:`RepeatingHandle` driving the chain: its
        ``when`` always points at the next occurrence, and ``cancel()``
        stops the repetition. A tick scheduled past ``until`` fires
        nothing and ends the chain.
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        handle = RepeatingHandle(self.now + interval, callback, args, interval, until)
        self._push(handle)
        return handle

    # -- execution -------------------------------------------------------

    # step(), run_until() and run_all() intentionally duplicate the fire
    # sequence (anonymous-vs-handle branch, live-counter bookkeeping,
    # repeating-vs-plain branch, sink notification): one event is one
    # pass through this code, and the extra call frames of a shared
    # helper are measurable at swarm scale. Anonymous events — the
    # ``(when, seq, callback, args)`` 4-tuples pushed by
    # :meth:`schedule_fast` — take the first branch: no cancelled check,
    # no handle bookkeeping. Sinks receive the raw 4-tuple for those
    # (see ``repro.harness.profile.callback_of``). run_until() and
    # run_all() accumulate the fired count in a local and flush it in a
    # ``finally``, so ``events_fired`` is only guaranteed current
    # *between* drain calls — no in-tree callback reads it mid-drain.

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if len(entry) == 4:
                self._live -= 1
                self.now = entry[0]
                entry[2](*entry[3])
                handle: Any = entry
            else:
                when, _, handle = entry
                if handle.cancelled:
                    continue
                self._live -= 1
                handle._loop = None
                self.now = when
                if handle._repeating:
                    handle._fire(self)
                else:
                    handle.callback(*handle.args)
            self._events_fired += 1
            if EventLoop._sinks:
                for sink in EventLoop._sinks:
                    sink.record(self, handle)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire all events scheduled at or before ``deadline``."""
        heap = self._heap
        fired = 0
        try:
            while heap and heap[0][0] <= deadline:
                entry = heappop(heap)
                if len(entry) == 4:
                    self._live -= 1
                    self.now = entry[0]
                    entry[2](*entry[3])
                    handle: Any = entry
                else:
                    when, _, handle = entry
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    handle._loop = None
                    self.now = when
                    if handle._repeating:
                        handle._fire(self)
                    else:
                        handle.callback(*handle.args)
                fired += 1
                if EventLoop._sinks:
                    for sink in EventLoop._sinks:
                        sink.record(self, handle)
        finally:
            self._events_fired += fired
        self.now = max(self.now, deadline)

    def run(self, duration: float) -> None:
        """Advance the clock ``duration`` seconds, firing due events."""
        self.run_until(self.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded to catch runaway loops).

        Fires at most ``max_events`` events: the bound is exact — if
        live events remain once it is reached, the loop raises without
        firing a ``max_events + 1``-th event.
        """
        heap = self._heap
        fired = 0
        try:
            while heap:
                entry = heappop(heap)
                if len(entry) == 4:
                    self._live -= 1
                    self.now = entry[0]
                    entry[2](*entry[3])
                    handle: Any = entry
                else:
                    when, _, handle = entry
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    handle._loop = None
                    self.now = when
                    if handle._repeating:
                        handle._fire(self)
                    else:
                        handle.callback(*handle.args)
                fired += 1
                if EventLoop._sinks:
                    for sink in EventLoop._sinks:
                        sink.record(self, handle)
                if fired >= max_events and self._live:
                    raise RuntimeError(
                        f"event loop exceeded {max_events} events; likely a livelock"
                    )
        finally:
            self._events_fired += fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def events_fired(self) -> int:
        """Total events this loop has fired since construction."""
        return self._events_fired
