"""Discrete-event simulation clock.

Everything time-dependent in the simulator — datagram delivery, player
ticks, resource-monitor sampling, viewer churn — is driven by one
:class:`EventLoop`. Time is a float in seconds; events at equal times
fire in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic.

The loop is the hottest code in the simulator (million-datagram swarms
fire one event per delivery), so the scheduler is two-tier:

- a **timing wheel** (calendar queue) of fixed-width buckets covering
  the narrow in-flight-datagram delay band — O(1) append on schedule,
  one small Timsort per bucket at dispatch time — holds the short-delay
  timer class that dominates at swarm depth;
- the classic **binary heap** holds everything out of band: long fault
  timers, repeating :meth:`EventLoop.call_every` handles, and wheel
  overflow.

Dispatch merges the two tiers by ``(when, seq)``, so event order — and
therefore every seed-pinned digest — is bit-identical to a pure-heap
loop (``tests/chaos/test_timing_wheel.py`` proves the equivalence
property). The dispatch path is deliberately flat: ``step``/``run_until``
pop and fire inline rather than through helper calls, and
:attr:`EventLoop.pending` is an O(1) counter maintained by
``schedule``/``cancel``/dispatch instead of a queue scan.

Observability: sinks registered via :meth:`EventLoop.add_sink` are
notified after every fired event (see :mod:`repro.harness.profile`);
:meth:`EventLoop.wheel_stats` exposes the wheel's occupancy and
overflow counters. Sinks are class-wide so a harness can observe every
loop an experiment creates; they must only observe, never schedule.
A single *pre-fire* trace hook (:meth:`EventLoop.set_trace`) is called
with each selected event **before** its callback runs — DetSan
(:mod:`repro.analysis.sanitizer`) uses it so the event whose callback
raises, or diverges between runs, is already in the trace when it does.
"""

from __future__ import annotations

import itertools
from array import array
from heapq import heappop, heappush
from sys import maxsize as _MAX_EVENTS
from typing import Any, Callable, ClassVar

from repro.util.errors import ConfigurationError

_INFINITY = float("inf")

#: Default timing-wheel geometry: 512 buckets of 0.5 ms cover a 256 ms
#: horizon — wide enough for the default latency model's delay band
#: (20 ms same-region / 120 ms cross-region base plus jitter) with slack
#: for the wheel origin trailing ``now``. :class:`~repro.net.network.
#: Network` retunes its loop from the latency model's actual band via
#: :meth:`EventLoop.configure_wheel_for_band`.
DEFAULT_WHEEL_SLOTS = 512
DEFAULT_WHEEL_WIDTH = 0.0005

#: Floor for a derived bucket width — a degenerate band (all-zero
#: latencies) must not produce zero-width buckets.
MIN_WHEEL_WIDTH = 1e-5


class TimerHandle:
    """Handle returned by :meth:`EventLoop.schedule`; supports cancel()."""

    __slots__ = ("when", "callback", "args", "cancelled", "_loop")

    #: Class flag the dispatch path branches on instead of isinstance().
    _repeating = False

    def __init__(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        # The loop whose queue currently holds this handle; None once the
        # handle is popped (or never queued). Lets cancel() keep the
        # loop's live-event counter exact without a queue scan.
        self._loop: "EventLoop | None" = None

    def cancel(self) -> None:
        """Mark the event cancelled; the loop skips it when it surfaces."""
        if self.cancelled:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._live -= 1
            self._loop = None


class RepeatingHandle(TimerHandle):
    """Handle for one :meth:`EventLoop.call_every` chain.

    Unlike a plain :class:`TimerHandle`, this handle *is* the entry in
    the loop's queue: after each tick it re-inserts itself, advancing
    :attr:`when` to the next occurrence. ``cancel()`` therefore stops
    the chain directly, and the loop's ``pending`` count sees exactly
    one entry per repeating timer. Repeating timers are a heap-class
    timer by design — they span arbitrary intervals, so they bypass the
    wheel entirely (see the module docstring).
    """

    __slots__ = ("interval", "until")

    _repeating = True

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple,
        interval: float,
        until: float | None,
    ) -> None:
        super().__init__(when, callback, args)
        self.interval = interval
        self.until = until

    def _fire(self, loop: "EventLoop") -> None:
        """Run one tick and reschedule the next occurrence."""
        if self.until is not None and loop.now > self.until:
            return
        self.callback(*self.args)
        if self.cancelled:  # the callback may cancel its own chain
            return
        self.when = loop.now + self.interval
        self._loop = loop
        loop._live += 1
        heappush(loop._heap, (self.when, next(loop._seq), self))


class EventLoop:
    """A two-tier (timing wheel + binary heap) discrete-event scheduler.

    The wheel covers ``[_wheel_tick * width, (_wheel_tick + slots) *
    width)``: an entry whose bucket index (``int(when / width)``) falls
    in that window is appended to its bucket in O(1); everything else —
    including every entry while the wheel is disabled — goes to the
    heap. At dispatch time the next due bucket is *collected*: sorted
    descending by ``(when, seq)`` into ``_cursor`` so ``cursor.pop()``
    yields events in ascending order, then merged entry-by-entry
    against the heap top. Buckets partition time, so every uncollected
    wheel entry is strictly later than every cursor entry, and the
    global minimum is always ``min(cursor[-1], heap[0])``.

    **Batched datagram columns.** Each slot additionally owns three
    *column rings* — ``array('d')`` of whens, ``array('q')`` of seqs,
    and a flat stride-4 object list of ``(host, port, payload, src)``
    fields — that the network's send path appends in-band datagram
    deliveries into instead of building per-datagram entry tuples
    (:meth:`set_datagram_plane`). The columns are preallocated with the
    wheel geometry and cleared in place at collect time, so the same
    arrays are reused lap after lap. Collection zips the columns into
    sortable 6-field rows ``(when, seq, host, port, payload, src)``,
    sorts them together with the slot's generic entries — ``(when,
    seq)`` is a unique prefix, so mixed-shape tuples compare safely —
    and dispatch hands each contiguous run of rows to the installed
    drain in **one callback frame**, still merging per item against the
    heap top so dispatch order stays bit-identical to a pure-heap loop.
    """

    #: Slotted for the same reason the per-packet classes are: the
    #: dispatch and schedule paths touch half a dozen loop attributes
    #: per event, and slot access skips the instance-dict indirection.
    __slots__ = (
        "now", "_heap", "_seq", "_events_fired", "_live",
        "_wheel", "_cursor", "_wheel_tick", "_wheel_count",
        "_wheel_width", "_wheel_inv", "_wheel_slots",
        "_bwhen", "_bseq", "_bobjs", "_dg_drain", "_dg_callback",
        "wheel_scheduled", "wheel_overflow",
        "wheel_batched", "wheel_batch_drains",
    )

    #: Class-wide observer sinks (see :mod:`repro.harness.profile`). A
    #: tuple so the hot-path emptiness check is a plain truthiness test.
    _sinks: ClassVar[tuple] = ()

    #: Class-wide pre-fire trace hook: ``_trace(loop, entry_or_handle)``
    #: called before each event's callback runs. One hook, not a tuple —
    #: it sits on the hottest line in the simulator, and DetSan is its
    #: only client.
    _trace: ClassVar[Any] = None

    def __init__(
        self,
        wheel_width: float | None = None,
        wheel_slots: int | None = None,
    ) -> None:
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._events_fired = 0
        #: Not-yet-cancelled entries queued (heap + wheel + cursor) — the
        #: O(1) source of :attr:`pending`, maintained by push/cancel/pop.
        self._live = 0
        # -- timing wheel state (geometry set by configure_wheel) ------
        self._wheel: list[list] = []
        self._cursor: list = []  # collected bucket, sorted descending
        self._wheel_tick = 0  # next bucket index not yet collected
        self._wheel_count = 0  # entries resident in buckets (not cursor)
        self._wheel_width = 0.0
        self._wheel_inv = 0.0
        self._wheel_slots = 0
        # -- batched datagram columns (see the class docstring) --------
        self._bwhen: list = []
        self._bseq: list = []
        self._bobjs: list = []
        #: Installed by :meth:`set_datagram_plane`; ``None`` on loops
        #: with no network attached (pure-timer loops never see rows).
        self._dg_drain: Any = None
        self._dg_callback: Any = None
        #: Cumulative wheel counters, surfaced by :meth:`wheel_stats`.
        self.wheel_scheduled = 0
        self.wheel_overflow = 0
        self.wheel_batched = 0
        self.wheel_batch_drains = 0
        if wheel_slots is None:
            wheel_slots = DEFAULT_WHEEL_SLOTS
        if wheel_width is None:
            wheel_width = DEFAULT_WHEEL_WIDTH
        self.configure_wheel(wheel_width if wheel_slots else None, wheel_slots)

    # -- instrumentation -------------------------------------------------

    @classmethod
    def add_sink(cls, sink: Any) -> None:
        """Register an observer notified as ``sink.record(loop, handle)``."""
        cls._sinks = cls._sinks + (sink,)  # repro: allow[SHARD001] harness-owned observability, not sim state

    @classmethod
    def remove_sink(cls, sink: Any) -> None:
        """Unregister a sink previously passed to :meth:`add_sink`."""
        cls._sinks = tuple(s for s in cls._sinks if s is not sink)  # repro: allow[SHARD001] harness-owned observability, not sim state

    @classmethod
    def set_trace(cls, hook: Any) -> None:
        """Install the pre-fire trace hook (replacing any previous one)."""
        cls._trace = hook  # repro: allow[SHARD001] harness-owned observability, not sim state

    @classmethod
    def clear_trace(cls) -> None:
        """Remove the pre-fire trace hook."""
        cls._trace = None  # repro: allow[SHARD001] harness-owned observability, not sim state

    def set_datagram_plane(self, drain: Any, callback: Any) -> None:
        """Install the network's batched datagram delivery plane.

        ``drain(deadline, budget) -> fired`` is invoked by the dispatch
        loops whenever the cursor's minimum is a batched 6-field row: it
        must pop and fire consecutive due rows (merging per item against
        the heap top and honouring ``deadline``/``budget``) and return
        how many it fired. ``callback`` is the representative
        per-datagram callable — what a classic entry would have carried
        — used to synthesize legacy-shaped entries for sinks, the trace
        hook, flushes to the heap, and :meth:`_iter_queued`.
        """
        self._dg_drain = drain
        self._dg_callback = callback

    @property
    def wheel_occupancy(self) -> int:
        """Entries currently wheel-resident (buckets plus cursor)."""
        return self._wheel_count + len(self._cursor)

    def wheel_stats(self) -> dict:
        """The wheel's geometry and counters, for profile sinks/benches."""
        return {
            "slots": self._wheel_slots,
            "bucket_width": self._wheel_width,
            "scheduled": self.wheel_scheduled,
            "overflow": self.wheel_overflow,
            "occupancy": self.wheel_occupancy,
            "batched": self.wheel_batched,
            "batch_drains": self.wheel_batch_drains,
        }

    def _iter_batch_rows(self, slot: int):
        """Yield one slot's batched rows as legacy-shaped 4-tuples."""
        objs = self._bobjs[slot]
        it = iter(objs)
        cb = self._dg_callback
        for when, seq, host, port, payload, src in zip(
            self._bwhen[slot], self._bseq[slot], it, it, it, it
        ):
            yield (when, seq, cb, (host, port, payload, src))

    def _iter_queued(self):
        """Yield every queued entry across both tiers (tests/debug only).

        Batched datagram rows — column-resident or already collected
        into the cursor — surface in the legacy ``(when, seq, callback,
        args)`` shape so queue scans need only one tuple vocabulary.
        """
        yield from self._heap
        cb = self._dg_callback
        for entry in self._cursor:
            if len(entry) == 6:
                yield (entry[0], entry[1], cb, entry[2:])
            else:
                yield entry
        for bucket in self._wheel:
            yield from bucket
        for slot in range(len(self._bwhen)):
            yield from self._iter_batch_rows(slot)

    # -- wheel geometry --------------------------------------------------

    def configure_wheel(
        self,
        bucket_width: float | None,
        slots: int = DEFAULT_WHEEL_SLOTS,
    ) -> None:
        """Resize the wheel; ``bucket_width=None`` or ``slots=0`` disables it.

        Safe mid-run: bucket-resident entries are flushed to the heap
        and dispatch merges the tiers by ``(when, seq)``, so event order
        is unchanged. The already-collected cursor is left in place for
        the same reason. Counters survive reconfiguration.
        """
        if bucket_width is not None and bucket_width <= 0:
            raise ConfigurationError(f"bucket width must be positive (got {bucket_width})")
        heap = self._heap
        for bucket in self._wheel:
            for entry in bucket:
                heappush(heap, entry)
        # Batched datagram rows flush in the legacy entry shape, so a
        # reconfigured (or disabled) wheel degrades to the classic
        # per-entry heap path with order intact.
        for slot in range(len(self._bwhen)):
            for entry in self._iter_batch_rows(slot):
                heappush(heap, entry)
        if bucket_width is None or slots <= 0:
            self._wheel = []
            self._bwhen = []
            self._bseq = []
            self._bobjs = []
            self._wheel_width = 0.0
            self._wheel_inv = 0.0
            self._wheel_slots = 0
            self._wheel_tick = 0
        else:
            self._wheel = [[] for _ in range(slots)]
            self._bwhen = [array("d") for _ in range(slots)]
            self._bseq = [array("q") for _ in range(slots)]
            self._bobjs = [[] for _ in range(slots)]
            self._wheel_width = bucket_width
            self._wheel_inv = 1.0 / bucket_width
            self._wheel_slots = slots
            self._wheel_tick = int(self.now * self._wheel_inv)
        self._wheel_count = 0

    def configure_wheel_for_band(
        self,
        max_delay: float,
        slots: int = DEFAULT_WHEEL_SLOTS,
    ) -> None:
        """Pick a bucket width so delays up to ``max_delay`` stay in-band.

        The horizon is 2x the band: the wheel origin trails ``now`` by
        up to one collected bucket plus scheduling slack, and anything
        past the horizon (fault impairments, uplink queueing spikes)
        overflows to the heap, which is exactly where rare long timers
        belong.
        """
        if slots <= 0:
            self.configure_wheel(None, 0)
            return
        width = (2.0 * max_delay) / slots
        if width < MIN_WHEEL_WIDTH:
            width = MIN_WHEEL_WIDTH
        if width == self._wheel_width and slots == self._wheel_slots:
            # Same geometry: skip the reconfigure so steady-state
            # auto-retune checks don't flush bucket residents for
            # nothing. (An idle wheel whose origin trails `now` resyncs
            # itself in _overflow.)
            return
        self.configure_wheel(width, slots)

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, entry: tuple) -> None:
        """Route one ``(when, seq, …)`` entry to the wheel or the heap.

        Kept in sync with the inline copy in
        :meth:`repro.net.network.Network.send_datagram` (a call frame
        per datagram is measurable at swarm scale).
        """
        tick = int(entry[0] * self._wheel_inv)
        if 0 <= tick - self._wheel_tick < self._wheel_slots:
            self._wheel[tick % self._wheel_slots].append(entry)
            self._wheel_count += 1
            self.wheel_scheduled += 1
        else:
            self._overflow(entry, tick)

    def _overflow(self, entry: tuple, tick: int) -> None:
        """Heap fallback for out-of-band entries (resyncs an idle wheel)."""
        if self._wheel_slots and not self._wheel_count and not self._cursor:
            base = int(self.now * self._wheel_inv)
            if base > self._wheel_tick:
                # The wheel sat idle while heap events advanced the
                # clock; drag the origin forward and re-test the band.
                self._wheel_tick = base
                if 0 <= tick - base < self._wheel_slots:
                    self._wheel[tick % self._wheel_slots].append(entry)
                    self._wheel_count += 1
                    self.wheel_scheduled += 1
                    return
        self.wheel_overflow += 1
        heappush(self._heap, entry)

    def _push(self, handle: TimerHandle) -> None:
        """Queue ``handle`` and account for it in the live counter."""
        handle._loop = self
        self._live += 1
        self._enqueue((handle.when, next(self._seq), handle))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        handle = TimerHandle(self.now + delay, callback, args)
        self._push(handle)
        return handle

    def schedule_fast(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        """Trusted fast path for hot callers: anonymous, not cancellable.

        The network data plane schedules one delivery per datagram; this
        skips :meth:`schedule`'s bounds check and the whole
        :class:`TimerHandle` allocation — the queue entry itself becomes
        a ``(when, seq, callback, args)`` 4-tuple the dispatch paths
        special-case by length (one container allocation per event
        instead of two, which also halves this path's GC pressure). The
        caller guarantees ``when >= now`` and gets no handle back, so
        the event cannot be cancelled (in-flight datagrams never are;
        faults drop at delivery time instead). This is the timer class
        the wheel was built for: in-band entries take an O(1) bucket
        append instead of an O(log n) heap sift.
        """
        self._live += 1
        self._enqueue((when, next(self._seq), callback, args))

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise ConfigurationError(f"cannot schedule at {when} < now {self.now}")
        handle = TimerHandle(when, callback, args)
        self._push(handle)
        return handle

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
    ) -> RepeatingHandle:
        """Schedule a repeating callback every ``interval`` seconds.

        Returns the :class:`RepeatingHandle` driving the chain: its
        ``when`` always points at the next occurrence, and ``cancel()``
        stops the repetition. A tick scheduled past ``until`` fires
        nothing and ends the chain. Repeating handles live on the heap,
        never the wheel, matching :meth:`RepeatingHandle._fire`'s
        re-insertion.
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        handle = RepeatingHandle(self.now + interval, callback, args, interval, until)
        handle._loop = self
        self._live += 1
        heappush(self._heap, (handle.when, next(self._seq), handle))
        return handle

    # -- execution -------------------------------------------------------

    # step(), run_until() and run_all() intentionally duplicate the fire
    # sequence (two-tier selection, anonymous-vs-handle branch,
    # live-counter bookkeeping, pre-fire trace hook, repeating-vs-plain
    # branch, sink notification): one event is one pass through this code, and the
    # extra call frames of a shared helper are measurable at swarm
    # scale. Selection invariant: _collect() is called whenever the
    # cursor is empty and buckets are not, so the wheel's minimum entry
    # is always cursor[-1] and the global minimum is the smaller of
    # cursor[-1] and heap[0] by (when, seq) tuple comparison (seq is
    # unique, so the comparison never reaches the callback element).
    # Anonymous events — the ``(when, seq, callback, args)`` 4-tuples
    # pushed by :meth:`schedule_fast` — take the first fire branch: no
    # cancelled check, no handle bookkeeping. Sinks receive the raw
    # 4-tuple for those (see ``repro.harness.profile.callback_of``).
    # run_until() and run_all() accumulate the fired count in a local
    # and flush it in a ``finally``, so ``events_fired`` is only
    # guaranteed current *between* drain calls — no in-tree callback
    # reads it mid-drain.

    def _collect(self) -> None:
        """Move the next nonempty bucket into the sorted cursor.

        Only called when the cursor is empty and ``_wheel_count > 0``;
        every resident entry lies within one lap ahead of
        ``_wheel_tick`` (the enqueue band check guarantees it), so the
        scan terminates within ``slots`` probes. The bucket is sorted
        descending so ``cursor.pop()`` yields ``(when, seq)`` ascending.

        A slot's batched datagram columns are zipped into 6-field rows
        here, sorted together with the slot's generic entries (the
        unique ``(when, seq)`` prefix makes mixed-shape comparison
        safe), and the columns are cleared *in place* so their backing
        arrays are reused on the wheel's next lap.
        """
        wheel = self._wheel
        bwhen = self._bwhen
        n = self._wheel_slots
        tick = self._wheel_tick
        slot = tick % n
        bucket = wheel[slot]
        while not bucket and not bwhen[slot]:
            tick += 1
            slot = tick % n
            bucket = wheel[slot]
        self._wheel_tick = tick + 1
        when = bwhen[slot]
        if when:
            seq = self._bseq[slot]
            objs = self._bobjs[slot]
            it = iter(objs)
            rows = list(zip(when, seq, it, it, it, it))
            self._wheel_count -= len(rows) + len(bucket)
            if bucket:
                rows += bucket
                wheel[slot] = []
            del when[:]
            del seq[:]
            del objs[:]
            rows.sort(reverse=True)
            self._cursor = rows
        else:
            wheel[slot] = []
            self._wheel_count -= len(bucket)
            bucket.sort(reverse=True)
            self._cursor = bucket

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is empty."""
        heap = self._heap
        while True:
            cursor = self._cursor
            if not cursor and self._wheel_count:
                self._collect()
                cursor = self._cursor
            if cursor:
                top = cursor[-1]
                if heap and heap[0] < top:
                    entry = heappop(heap)
                elif len(top) == 6:
                    # Batched datagram row: the installed drain fires
                    # exactly one (budget=1) and keeps step() semantics.
                    self._dg_drain(_INFINITY, 1)
                    self._events_fired += 1
                    return True
                else:
                    entry = cursor.pop()
            elif heap:
                entry = heappop(heap)
            else:
                return False
            if len(entry) == 4:
                self._live -= 1
                self.now = entry[0]
                if EventLoop._trace is not None:
                    EventLoop._trace(self, entry)
                entry[2](*entry[3])
                handle: Any = entry
            else:
                when, _, handle = entry
                if handle.cancelled:
                    continue
                self._live -= 1
                handle._loop = None
                self.now = when
                if EventLoop._trace is not None:
                    EventLoop._trace(self, handle)
                if handle._repeating:
                    handle._fire(self)
                else:
                    handle.callback(*handle.args)
            self._events_fired += 1
            if EventLoop._sinks:
                for sink in EventLoop._sinks:
                    sink.record(self, handle)
            return True

    def run_until(self, deadline: float) -> None:
        """Fire all events scheduled at or before ``deadline``."""
        heap = self._heap
        fired = 0
        try:
            while True:
                # Re-read per iteration: _collect() replaces the cursor
                # object, and a callback may nest another drain call.
                cursor = self._cursor
                if not cursor and self._wheel_count:
                    self._collect()
                    cursor = self._cursor
                if cursor:
                    top = cursor[-1]
                    if heap and heap[0] < top:
                        if heap[0][0] > deadline:
                            break
                        entry = heappop(heap)
                    elif len(top) == 6:
                        # Batched datagram run: one drain frame fires
                        # every consecutive due row (per-item heap
                        # merge inside); zero fired means the cursor
                        # minimum lies beyond the deadline.
                        n = self._dg_drain(deadline, _MAX_EVENTS)
                        if n == 0:
                            break
                        fired += n
                        continue
                    else:
                        if top[0] > deadline:
                            break
                        entry = cursor.pop()
                elif heap:
                    if heap[0][0] > deadline:
                        break
                    entry = heappop(heap)
                else:
                    break
                if len(entry) == 4:
                    self._live -= 1
                    self.now = entry[0]
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, entry)
                    entry[2](*entry[3])
                    handle: Any = entry
                else:
                    when, _, handle = entry
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    handle._loop = None
                    self.now = when
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, handle)
                    if handle._repeating:
                        handle._fire(self)
                    else:
                        handle.callback(*handle.args)
                fired += 1
                if EventLoop._sinks:
                    for sink in EventLoop._sinks:
                        sink.record(self, handle)
        finally:
            self._events_fired += fired
        self.now = max(self.now, deadline)

    def run(self, duration: float) -> None:
        """Advance the clock ``duration`` seconds, firing due events."""
        self.run_until(self.now + duration)

    def run_until_window(self, deadline: float, max_events: int | None = None) -> int:
        """Fire events up to ``deadline`` under an exact event budget.

        The conservative-PDES window primitive (see ``docs/SHARDING.md``):
        a shard's coordinator drives the loop one lookahead window at a
        time, and — unlike :meth:`run_until` — needs both the fired
        count back (for ``run_all(max_events=N)`` exactness across
        shards) and a budget that stops dispatch *mid-window* without
        firing a budget+1-th event. When the budget interrupts the
        window, ``now`` is **not** advanced to ``deadline`` — due events
        may remain at or before it, and a later :meth:`inject` of a
        remote arrival inside the window must still be legal. A window
        that completes (``fired < budget``) advances ``now`` to the
        barrier exactly like :meth:`run_until`.
        """
        heap = self._heap
        budget = _MAX_EVENTS if max_events is None else max_events
        if budget <= 0:
            return 0
        fired = 0
        try:
            while True:
                # Re-read per iteration: _collect() replaces the cursor
                # object, and a callback may nest another drain call.
                cursor = self._cursor
                if not cursor and self._wheel_count:
                    self._collect()
                    cursor = self._cursor
                if cursor:
                    top = cursor[-1]
                    if heap and heap[0] < top:
                        if heap[0][0] > deadline:
                            break
                        entry = heappop(heap)
                    elif len(top) == 6:
                        n = self._dg_drain(deadline, budget - fired)
                        if n == 0:
                            break
                        fired += n
                        if fired >= budget:
                            break
                        continue
                    else:
                        if top[0] > deadline:
                            break
                        entry = cursor.pop()
                elif heap:
                    if heap[0][0] > deadline:
                        break
                    entry = heappop(heap)
                else:
                    break
                if len(entry) == 4:
                    self._live -= 1
                    self.now = entry[0]
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, entry)
                    entry[2](*entry[3])
                    handle: Any = entry
                else:
                    when, _, handle = entry
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    handle._loop = None
                    self.now = when
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, handle)
                    if handle._repeating:
                        handle._fire(self)
                    else:
                        handle.callback(*handle.args)
                fired += 1
                if EventLoop._sinks:
                    for sink in EventLoop._sinks:
                        sink.record(self, handle)
                if fired >= budget:
                    break
        finally:
            self._events_fired += fired
        if fired < budget:
            self.now = max(self.now, deadline)
        return fired

    def inject(self, when: float, callback: Callable[..., Any], args: tuple) -> None:
        """Enqueue a remote arrival under the window protocol.

        The cross-shard merge seam: the shard coordinator hands each
        remote datagram to the destination loop through here, and the
        entry joins the queue with a *fresh local* sequence number —
        dispatch therefore orders it by the same ``(when, seq)``
        comparison as every local event (seq re-keying, see
        ``docs/SHARDING.md``). ``when < now`` means a remote event
        arrived inside a window the loop already executed: the
        conservative protocol guarantees this never happens, so it is a
        hard error rather than a silent reordering.
        """
        if when < self.now:
            raise ConfigurationError(
                f"cannot inject at {when} < now {self.now} (window protocol violated)"
            )
        self._live += 1
        self._enqueue((when, next(self._seq), callback, args))

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded to catch runaway loops).

        Fires at most ``max_events`` events: the bound is exact — if
        live events remain once it is reached, the loop raises without
        firing a ``max_events + 1``-th event.
        """
        heap = self._heap
        fired = 0
        try:
            while True:
                # Re-read per iteration: _collect() replaces the cursor
                # object, and a callback may nest another drain call.
                cursor = self._cursor
                if not cursor and self._wheel_count:
                    self._collect()
                    cursor = self._cursor
                if cursor:
                    top = cursor[-1]
                    if heap and heap[0] < top:
                        entry = heappop(heap)
                    elif len(top) == 6:
                        # Batched datagram run: one drain frame, exact
                        # max_events budget (the drain stops mid-run
                        # rather than firing a budget+1-th event).
                        fired += self._dg_drain(_INFINITY, max_events - fired)
                        if fired >= max_events and self._live:
                            raise RuntimeError(
                                f"event loop exceeded {max_events} events; "
                                "likely a livelock"
                            )
                        continue
                    else:
                        entry = cursor.pop()
                elif heap:
                    entry = heappop(heap)
                else:
                    break
                if len(entry) == 4:
                    self._live -= 1
                    self.now = entry[0]
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, entry)
                    entry[2](*entry[3])
                    handle: Any = entry
                else:
                    when, _, handle = entry
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    handle._loop = None
                    self.now = when
                    if EventLoop._trace is not None:
                        EventLoop._trace(self, handle)
                    if handle._repeating:
                        handle._fire(self)
                    else:
                        handle.callback(*handle.args)
                fired += 1
                if EventLoop._sinks:
                    for sink in EventLoop._sinks:
                        sink.record(self, handle)
                if fired >= max_events and self._live:
                    raise RuntimeError(
                        f"event loop exceeded {max_events} events; likely a livelock"
                    )
        finally:
            self._events_fired += fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def events_fired(self) -> int:
        """Total events this loop has fired since construction."""
        return self._events_fired
