"""tcpdump-style traffic capture.

The PDN analyzer starts a capture on each peer container's virtual
interface (the paper dumps ``docker0``); the dynamic detector then
parses the captured datagrams for STUN binding requests followed by
DTLS handshakes between candidate peer pairs (§III-C).

Memory: a capture is append-only by default, but ``max_packets``
enables a ring-buffer mode mirroring the ``inbox_limit`` design on
:class:`~repro.net.network.UdpSocket` — once over the cap, the oldest
half is evicted in one batched ``del`` (amortised O(1)) and counted in
:attr:`TrafficCapture.dropped_records`. :meth:`TrafficCapture.
total_bytes` is a streaming counter covering every recorded packet,
evicted ones included, so it stays O(1) at swarm scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.addresses import Endpoint


@dataclass(frozen=True, slots=True)
class CapturedPacket:
    """One on-the-wire datagram as seen by the capture point.

    Slotted: captures at swarm scale hold millions of these, and the
    network allocates one per datagram whenever any capture is live.
    """

    time: float
    src: Endpoint
    dst: Endpoint
    payload: bytes
    dropped: bool = False  # True if the network dropped it (loss, faults, or routing)

    @property
    def size(self) -> int:
        """Size."""
        return len(self.payload)


class TrafficCapture:
    """A packet log with simple filtering and an optional ring bound.

    A capture may be *scoped* to a set of host IPs (a container's
    interface) via ``interface_ips``; unscoped captures see everything
    (the network-wide tap used in controlled experiments). Pass
    ``max_packets`` to bound :attr:`packets` as a ring buffer; the
    default ``None`` keeps the historical append-only behaviour.
    """

    def __init__(
        self,
        name: str = "capture",
        interface_ips: Iterable[str] | None = None,
        max_packets: int | None = None,
    ) -> None:
        self.name = name
        self.interface_ips: frozenset[str] | None = (
            frozenset(interface_ips) if interface_ips is not None else None
        )
        self.packets: list[CapturedPacket] = []
        self.max_packets = max_packets
        #: Packets evicted by the ring bound (never silently lost).
        self.dropped_records = 0
        self._running = True
        self._total_bytes = 0
        # Networks this capture is registered with (via
        # Network.add_capture); stop() deregisters from each so the
        # data plane's no-tap fast branch re-engages.
        self._taps: list = []

    def wants(self, packet: CapturedPacket) -> bool:
        """Wants."""
        if not self._running:
            return False
        if self.interface_ips is None:
            return True
        return packet.src.ip in self.interface_ips or packet.dst.ip in self.interface_ips

    def record(self, packet: CapturedPacket) -> None:
        """Record one packet, evicting the oldest half past the ring cap."""
        if self.wants(packet):
            self._total_bytes += len(packet.payload)
            packets = self.packets
            packets.append(packet)
            limit = self.max_packets
            if limit is not None and len(packets) > limit:
                evicted = len(packets) - limit // 2
                self.dropped_records += evicted
                del packets[:evicted]

    def stop(self) -> None:
        """Stop recording and detach from every registered network.

        Deregistering matters for throughput, not just semantics: a
        stopped-but-registered capture would keep the data plane
        constructing a :class:`CapturedPacket` per datagram only for
        :meth:`wants` to refuse it. Idempotent.
        """
        self._running = False
        for network in self._taps:
            if self in network.captures:
                network.captures.remove(self)
        self._taps.clear()

    # -- queries ---------------------------------------------------------

    def filter(self, predicate: Callable[[CapturedPacket], bool]) -> list[CapturedPacket]:
        """Filter."""
        return [p for p in self.packets if predicate(p)]

    def between(self, a: Endpoint | str, b: Endpoint | str) -> list[CapturedPacket]:
        """Packets in either direction between two endpoints (or bare IPs)."""

        def matches(ep: Endpoint, spec: Endpoint | str) -> bool:
            """Matches."""
            if isinstance(spec, str):
                return ep.ip == spec
            return ep == spec

        return [
            p
            for p in self.packets
            if (matches(p.src, a) and matches(p.dst, b))
            or (matches(p.src, b) and matches(p.dst, a))
        ]

    def total_bytes(self) -> int:
        """Payload bytes recorded over the capture's lifetime (O(1)).

        A streaming counter, so ring-evicted packets still count —
        matching what a real tcpdump byte counter reports. With the
        default unbounded mode this equals ``sum(p.size for p in
        self.packets)`` exactly.
        """
        return self._total_bytes

    def __len__(self) -> int:
        return len(self.packets)
