"""tcpdump-style traffic capture.

The PDN analyzer starts a capture on each peer container's virtual
interface (the paper dumps ``docker0``); the dynamic detector then
parses the captured datagrams for STUN binding requests followed by
DTLS handshakes between candidate peer pairs (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.addresses import Endpoint


@dataclass(frozen=True, slots=True)
class CapturedPacket:
    """One on-the-wire datagram as seen by the capture point.

    Slotted: captures at swarm scale hold millions of these, and the
    network allocates one per datagram whenever any capture is live.
    """

    time: float
    src: Endpoint
    dst: Endpoint
    payload: bytes
    dropped: bool = False  # True if the network dropped it (loss, faults, or routing)

    @property
    def size(self) -> int:
        """Size."""
        return len(self.payload)


class TrafficCapture:
    """An append-only packet log with simple filtering.

    A capture may be *scoped* to a set of host IPs (a container's
    interface) via ``interface_ips``; unscoped captures see everything
    (the network-wide tap used in controlled experiments).
    """

    def __init__(self, name: str = "capture", interface_ips: Iterable[str] | None = None) -> None:
        self.name = name
        self.interface_ips: frozenset[str] | None = (
            frozenset(interface_ips) if interface_ips is not None else None
        )
        self.packets: list[CapturedPacket] = []
        self._running = True

    def wants(self, packet: CapturedPacket) -> bool:
        """Wants."""
        if not self._running:
            return False
        if self.interface_ips is None:
            return True
        return packet.src.ip in self.interface_ips or packet.dst.ip in self.interface_ips

    def record(self, packet: CapturedPacket) -> None:
        """Record."""
        if self.wants(packet):
            self.packets.append(packet)

    def stop(self) -> None:
        """Stop this component."""
        self._running = False

    # -- queries ---------------------------------------------------------

    def filter(self, predicate: Callable[[CapturedPacket], bool]) -> list[CapturedPacket]:
        """Filter."""
        return [p for p in self.packets if predicate(p)]

    def between(self, a: Endpoint | str, b: Endpoint | str) -> list[CapturedPacket]:
        """Packets in either direction between two endpoints (or bare IPs)."""

        def matches(ep: Endpoint, spec: Endpoint | str) -> bool:
            """Matches."""
            if isinstance(spec, str):
                return ep.ip == spec
            return ep == spec

        return [
            p
            for p in self.packets
            if (matches(p.src, a) and matches(p.dst, b))
            or (matches(p.src, b) and matches(p.dst, a))
        ]

    def total_bytes(self) -> int:
        """Total bytes."""
        return sum(p.size for p in self.packets)

    def __len__(self) -> int:
        return len(self.packets)
