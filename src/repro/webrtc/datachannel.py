"""Reliable, ordered message channels over DTLS (SCTP-lite).

PDN SDKs move video segments between peers over WebRTC data channels.
Segments are megabytes, datagrams are not, and the network may drop
packets — so this layer chunks messages, acknowledges chunks, and
retransmits, giving the reliability SCTP provides under real WebRTC.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.net.clock import EventLoop, TimerHandle
from repro.util.errors import ProtocolError

_DATA = 0
_ACK = 1
_HEADER = struct.Struct("!BHIHH")  # kind, channel_id, msg_id, chunk_index, chunk_total
_RETRANSMIT_INTERVAL = 0.4
_MAX_RETRIES = 12
# DTLS records carry a 16-bit length and real DTLS caps payloads at 2^14;
# chunks must leave room for the channel header and the record MAC.
DEFAULT_CHUNK_SIZE = 16000


@dataclass
class _OutgoingMessage:
    channel_id: int
    msg_id: int
    chunks: list[bytes]
    unacked: set[int] = field(default_factory=set)
    retries: int = 0
    timer: TimerHandle | None = None


@dataclass
class _IncomingMessage:
    chunk_total: int
    chunks: dict[int, bytes] = field(default_factory=dict)


class DataChannelLayer:
    """Multiplexes reliable message channels over one DTLS session.

    ``transmit`` is the DTLS ``send_application`` callable; inbound
    plaintext records are fed to :meth:`handle_record`. Completed
    messages are delivered via ``on_message(channel_id, payload)``.
    """

    def __init__(
        self,
        loop: EventLoop,
        transmit: Callable[[bytes], None],
        on_message: Callable[[int, bytes], None] | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size <= 0:
            raise ProtocolError("chunk size must be positive")
        self.loop = loop
        self.transmit = transmit
        self.on_message = on_message
        self.chunk_size = chunk_size
        self._next_msg_id = 1
        self._outgoing: dict[tuple[int, int], _OutgoingMessage] = {}
        self._incoming: dict[tuple[int, int], _IncomingMessage] = {}
        self._delivered: set[tuple[int, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_abandoned = 0
        self.chunks_retransmitted = 0
        self.bytes_sent = 0

    # -- sending -----------------------------------------------------------

    def send(self, channel_id: int, payload: bytes) -> int:
        """Send one message; returns its message id."""
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        chunks = [payload[i : i + self.chunk_size] for i in range(0, len(payload), self.chunk_size)]
        if not chunks:
            chunks = [b""]
        if len(chunks) > 0xFFFF:
            raise ProtocolError("message too large for 16-bit chunk count")
        message = _OutgoingMessage(channel_id, msg_id, chunks, unacked=set(range(len(chunks))))
        self._outgoing[(channel_id, msg_id)] = message
        self.messages_sent += 1
        for index, chunk in enumerate(chunks):
            self._transmit_chunk(message, index, chunk)
        message.timer = self.loop.schedule(_RETRANSMIT_INTERVAL, self._retransmit, channel_id, msg_id)
        return msg_id

    def _transmit_chunk(self, message: _OutgoingMessage, index: int, chunk: bytes) -> None:
        header = _HEADER.pack(_DATA, message.channel_id, message.msg_id, index, len(message.chunks))
        self.bytes_sent += len(chunk)
        self.transmit(header + chunk)

    def _retransmit(self, channel_id: int, msg_id: int) -> None:
        message = self._outgoing.get((channel_id, msg_id))
        if message is None or not message.unacked:
            return
        message.retries += 1
        if message.retries > _MAX_RETRIES:
            self.messages_abandoned += 1
            del self._outgoing[(channel_id, msg_id)]
            return
        for index in sorted(message.unacked):
            self.chunks_retransmitted += 1
            self._transmit_chunk(message, index, message.chunks[index])
        message.timer = self.loop.schedule(_RETRANSMIT_INTERVAL, self._retransmit, channel_id, msg_id)

    # -- receiving -----------------------------------------------------------

    def handle_record(self, plaintext: bytes) -> None:
        """Process one decrypted DTLS application record."""
        if len(plaintext) < _HEADER.size:
            return
        kind, channel_id, msg_id, chunk_index, chunk_total = _HEADER.unpack(
            plaintext[: _HEADER.size]
        )
        body = plaintext[_HEADER.size :]
        if kind == _ACK:
            self._handle_ack(channel_id, msg_id, chunk_index)
        elif kind == _DATA:
            self._handle_data(channel_id, msg_id, chunk_index, chunk_total, body)

    def _handle_ack(self, channel_id: int, msg_id: int, chunk_index: int) -> None:
        message = self._outgoing.get((channel_id, msg_id))
        if message is None:
            return
        message.unacked.discard(chunk_index)
        if not message.unacked:
            if message.timer is not None:
                message.timer.cancel()
            del self._outgoing[(channel_id, msg_id)]

    def _handle_data(
        self, channel_id: int, msg_id: int, chunk_index: int, chunk_total: int, body: bytes
    ) -> None:
        ack = _HEADER.pack(_ACK, channel_id, msg_id, chunk_index, chunk_total)
        self.transmit(ack)
        key = (channel_id, msg_id)
        if key in self._delivered:
            return  # duplicate chunk of an already-delivered message
        incoming = self._incoming.setdefault(key, _IncomingMessage(chunk_total))
        incoming.chunks[chunk_index] = body
        if len(incoming.chunks) == incoming.chunk_total:
            payload = b"".join(incoming.chunks[i] for i in range(incoming.chunk_total))
            del self._incoming[key]
            self._delivered.add(key)
            self.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(channel_id, payload)

    @property
    def inflight_messages(self) -> int:
        """Inflight messages."""
        return len(self._outgoing)
