"""PeerConnection: ICE + DTLS + data channels behind one API.

This is the WebRTC surface the PDN SDK programs against, mirroring the
browser's ``RTCPeerConnection`` lifecycle: create offer (gather
candidates), signal it, apply the answer, run connectivity checks,
complete the DTLS handshake, then exchange data-channel messages.

Privacy posture is decided here: with ``relay_only`` set (the §V-C
mitigation) the connection publishes only TURN-relayed candidates and
tunnels everything through the relay, so the remote peer never observes
a real transport address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.addresses import Endpoint
from repro.net.clock import EventLoop
from repro.net.network import Host, UdpSocket
from repro.util.errors import ProtocolError, StunDecodeError
from repro.util.rand import DeterministicRandom
from repro.webrtc.certificates import Certificate
from repro.webrtc.datachannel import DEFAULT_CHUNK_SIZE, DataChannelLayer
from repro.webrtc.dtls import DtlsSession, is_dtls_datagram
from repro.webrtc.ice import IceAgent, IceCandidate
from repro.webrtc.stun import decode_stun, is_stun_datagram
from repro.webrtc.turn import TurnClient


@dataclass
class RtcConfig:
    """Configuration shared by every connection a client creates."""

    stun_servers: list[Endpoint] = field(default_factory=list)
    turn_server: Endpoint | None = None
    relay_only: bool = False
    chunk_size: int = DEFAULT_CHUNK_SIZE


@dataclass
class SessionDescription:
    """SDP-like session description carried over signaling."""

    kind: str  # "offer" | "answer"
    ufrag: str
    pwd: str
    fingerprint: str
    candidates: list[IceCandidate]

    def to_dict(self) -> dict:
        """To dict."""
        return {
            "kind": self.kind,
            "ufrag": self.ufrag,
            "pwd": self.pwd,
            "fingerprint": self.fingerprint,
            "candidates": [c.to_dict() for c in self.candidates],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionDescription":
        """From dict."""
        return cls(
            kind=data["kind"],
            ufrag=data["ufrag"],
            pwd=data["pwd"],
            fingerprint=data["fingerprint"],
            candidates=[IceCandidate.from_dict(c) for c in data["candidates"]],
        )


class PeerConnection:
    """One peer-to-peer association (the browser RTCPeerConnection analog)."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        rand: DeterministicRandom,
        config: RtcConfig | None = None,
        name: str = "pc",
    ) -> None:
        self.host = host
        self.loop = loop
        # Keyed by (host, name), both caller-chosen: a process address
        # (id(self)) here would give each run a stream keyed to heap
        # layout, breaking replay across processes. Callers creating
        # several connections per host pass distinct names (the PDN SDK
        # keys them "<client>-><peer_id>").
        self.rand = rand.fork(f"pc:{host.name}:{name}")
        self.config = config or RtcConfig()
        self.name = name
        self.socket: UdpSocket = host.bind_udp(0, self._on_datagram)
        self.certificate = Certificate.generate(self.rand, subject=name)

        self.turn_client: TurnClient | None = None
        if self.config.turn_server is not None:
            self.turn_client = TurnClient(
                self.rand.fork("turn"),
                self.config.turn_server,
                raw_send=self.socket.send,
                on_relayed_data=self._on_relayed_data,
            )

        self.ice = IceAgent(
            loop,
            self.rand.fork("ice"),
            local_ip=host.ip,
            local_port=self.socket.port,
            transport_send=self._transport_send,
            stun_servers=self.config.stun_servers,
            relay_only=self.config.relay_only,
        )

        self.role: str | None = None
        self.dtls: DtlsSession | None = None
        self.channels: DataChannelLayer | None = None
        self.remote_endpoint: Endpoint | None = None
        self.remote_description: SessionDescription | None = None
        self.connected = False
        self.closed = False
        self.on_connected: Callable[[], None] | None = None
        self.on_message: Callable[[int, bytes], None] | None = None
        self.on_error: Callable[[Exception], None] | None = None
        self._pending_sends: list[tuple[int, bytes]] = []

    # -- transport ----------------------------------------------------------

    def _transport_send(self, dst: Endpoint, payload: bytes) -> None:
        if self.closed:
            return
        if self.config.relay_only and self.turn_client is not None:
            if dst == self.config.turn_server:
                self.socket.send(dst, payload)  # TURN control traffic goes direct
            else:
                self.turn_client.send_via_relay(dst, payload)
        else:
            self.socket.send(dst, payload)

    def _on_datagram(self, data: bytes, src: Endpoint, sock: UdpSocket) -> None:
        if self.closed:
            return
        self._demux(data, src)

    def _on_relayed_data(self, payload: bytes, peer: Endpoint) -> None:
        """Data arriving via our TURN allocation, as if sent by ``peer``."""
        self._demux(payload, peer)

    def _demux(self, data: bytes, src: Endpoint) -> None:
        if is_stun_datagram(data):
            try:
                message = decode_stun(data)
            except StunDecodeError:
                return
            if self.turn_client is not None and self.turn_client.handle_stun(message, src):
                return
            self.ice.handle_stun(message, src)
        elif is_dtls_datagram(data):
            if self.remote_endpoint is None:
                self.remote_endpoint = src
            if self.dtls is not None:
                self.dtls.handle_datagram(data)

    # -- signaling lifecycle ---------------------------------------------------

    def create_offer(self, on_ready: Callable[[SessionDescription], None]) -> None:
        """Gather candidates and produce an offer (we become DTLS client)."""
        self.role = "offer"
        self._gather_then(lambda: on_ready(self._local_description("offer")))

    def accept_offer(
        self, offer: SessionDescription, on_ready: Callable[[SessionDescription], None]
    ) -> None:
        """Apply a remote offer and produce an answer (we become DTLS server)."""
        if offer.kind != "offer":
            raise ProtocolError(f"expected an offer, got {offer.kind}")
        self.role = "answer"
        self.remote_description = offer
        self.ice.set_remote(offer.candidates, offer.ufrag, offer.pwd)
        self._create_dtls(role="server", expected_fingerprint=offer.fingerprint)

        def after_gather() -> None:
            """After gather."""
            self.ice.wait_nominated(self._on_ice_nominated)
            on_ready(self._local_description("answer"))

        self._gather_then(after_gather)

    def set_answer(self, answer: SessionDescription) -> None:
        """Apply the remote answer and start connectivity checks."""
        if self.role != "offer":
            raise ProtocolError("set_answer is only valid on the offering side")
        if answer.kind != "answer":
            raise ProtocolError(f"expected an answer, got {answer.kind}")
        self.remote_description = answer
        self.ice.set_remote(answer.candidates, answer.ufrag, answer.pwd)
        self.ice.start_checks(self._on_ice_nominated)

    def _gather_then(self, proceed: Callable[[], None]) -> None:
        if self.turn_client is not None and self.turn_client.relayed_endpoint is None:

            def on_allocated(relayed: Endpoint) -> None:
                """On allocated."""
                self.ice.relay_endpoint = relayed
                self.ice.gather(lambda _candidates: proceed())

            self.turn_client.allocate(on_allocated)
        else:
            self.ice.gather(lambda _candidates: proceed())

    def _local_description(self, kind: str) -> SessionDescription:
        return SessionDescription(
            kind=kind,
            ufrag=self.ice.ufrag,
            pwd=self.ice.pwd,
            fingerprint=self.certificate.fingerprint,
            candidates=list(self.ice.local_candidates),
        )

    # -- ICE / DTLS progression ---------------------------------------------------

    def _on_ice_nominated(self, remote: Endpoint) -> None:
        self.remote_endpoint = remote
        if self.role == "offer" and self.dtls is None:
            assert self.remote_description is not None
            self._create_dtls(role="client", expected_fingerprint=self.remote_description.fingerprint)
            assert self.dtls is not None
            self.dtls.start()

    def _create_dtls(self, role: str, expected_fingerprint: str) -> None:
        self.dtls = DtlsSession(
            self.loop,
            self.rand.fork("dtls"),
            role=role,
            certificate=self.certificate,
            expected_fingerprint=expected_fingerprint,
            send=self._send_dtls_datagram,
            on_established=self._on_dtls_established,
            on_data=self._on_dtls_data,
            on_error=self._on_dtls_error,
        )

    def _send_dtls_datagram(self, data: bytes) -> None:
        if self.remote_endpoint is not None:
            self._transport_send(self.remote_endpoint, data)

    def _on_dtls_established(self) -> None:
        assert self.dtls is not None
        self.channels = DataChannelLayer(
            self.loop,
            transmit=self.dtls.send_application,
            on_message=self._on_channel_message,
            chunk_size=self.config.chunk_size,
        )
        self.connected = True
        for channel_id, payload in self._pending_sends:
            self.channels.send(channel_id, payload)
        self._pending_sends.clear()
        if self.on_connected is not None:
            self.on_connected()

    def _on_dtls_data(self, plaintext: bytes) -> None:
        if self.channels is not None:
            self.channels.handle_record(plaintext)

    def _on_channel_message(self, channel_id: int, payload: bytes) -> None:
        if self.on_message is not None:
            self.on_message(channel_id, payload)

    def _on_dtls_error(self, error: Exception) -> None:
        if self.on_error is not None:
            self.on_error(error)

    # -- application API ---------------------------------------------------------

    def send(self, channel_id: int, payload: bytes) -> None:
        """Send a message; queued if the connection is still establishing."""
        if self.closed:
            raise ProtocolError("connection is closed")
        if self.channels is None:
            self._pending_sends.append((channel_id, payload))
        else:
            self.channels.send(channel_id, payload)

    def refresh_connectivity(self) -> None:
        """Re-validate the peer path after a local network change.

        Called by the PDN SDK when its NAT rebinds: the authenticated
        ICE check re-punches a mapping at the fresh external address and
        lets the remote agent follow us there, so the association
        either survives the rebind or times out into CDN fallback.
        """
        if not self.closed:
            self.ice.refresh()

    def close(self) -> None:
        """Close and release resources."""
        self.closed = True
        self.socket.close()

    @property
    def uses_relay_path(self) -> bool:
        """Uses relay path."""
        return self.config.relay_only and self.turn_client is not None
