"""Interactive Connectivity Establishment (ICE) — candidates and checks.

ICE is the stage at which the paper's *peer IP leak* happens: host and
server-reflexive candidates carry real transport addresses, which the
signaling server forwards to arbitrary swarm members and which then
appear again in clear-text STUN connectivity checks. The agent records
every remote address it observes (`observed_remotes`) — exactly the data
the paper's harvesting peer collects with a Wireshark script.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.net.addresses import Endpoint
from repro.net.clock import EventLoop
from repro.util.errors import ProtocolError
from repro.util.rand import DeterministicRandom
from repro.webrtc.stun import (
    AttributeType,
    StunClass,
    StunMessage,
    StunMethod,
    add_message_integrity,
    encode_stun,
    encode_xor_address,
    verify_message_integrity,
)

_GATHER_TIMEOUT = 1.0
_CHECK_RETRANSMIT = 0.3
_MAX_CHECK_SENDS = 4


class CandidateType(enum.Enum):
    """CandidateType."""
    HOST = "host"
    SRFLX = "srflx"  # server-reflexive (public address learned via STUN)
    RELAY = "relay"  # TURN-relayed


_TYPE_PREFERENCE = {CandidateType.HOST: 126, CandidateType.SRFLX: 100, CandidateType.RELAY: 2}


@dataclass(frozen=True)
class IceCandidate:
    """One candidate transport address."""

    cand_type: CandidateType
    endpoint: Endpoint
    priority: int
    foundation: str

    @classmethod
    def make(cls, cand_type: CandidateType, endpoint: Endpoint, component: int = 1) -> "IceCandidate":
        """Make."""
        priority = (_TYPE_PREFERENCE[cand_type] << 24) | (65535 << 8) | (256 - component)
        return cls(cand_type, endpoint, priority, f"{cand_type.value}:{endpoint.ip}")

    def to_dict(self) -> dict:
        """To dict."""
        return {
            "type": self.cand_type.value,
            "ip": self.endpoint.ip,
            "port": self.endpoint.port,
            "priority": self.priority,
            "foundation": self.foundation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IceCandidate":
        """From dict."""
        return cls(
            CandidateType(data["type"]),
            Endpoint(data["ip"], data["port"]),
            data["priority"],
            data["foundation"],
        )


class IceAgent:
    """Gathers candidates and runs connectivity checks over one socket.

    The owning :class:`~repro.webrtc.peer_connection.PeerConnection`
    demultiplexes inbound datagrams and passes STUN messages here via
    :meth:`handle_stun`. ``transport_send(dst, payload)`` abstracts the
    socket so relay-only mode can tunnel checks through TURN.
    """

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        local_ip: str,
        local_port: int,
        transport_send: Callable[[Endpoint, bytes], None],
        stun_servers: list[Endpoint] | None = None,
        relay_endpoint: Endpoint | None = None,
        relay_only: bool = False,
    ) -> None:
        self.loop = loop
        self.rand = rand
        self.local_ip = local_ip
        self.local_port = local_port
        self._send = transport_send
        self.stun_servers = list(stun_servers or [])
        self.relay_endpoint = relay_endpoint
        self.relay_only = relay_only

        self.ufrag = rand.bytes(4).hex()
        self.pwd = rand.bytes(12).hex()
        self.remote_ufrag: str | None = None
        self.remote_pwd: str | None = None

        self.local_candidates: list[IceCandidate] = []
        self.remote_candidates: list[IceCandidate] = []
        self.nominated_remote: Endpoint | None = None
        self.controlling = False
        self.observed_remotes: list[tuple[float, Endpoint]] = []

        self._gather_pending: dict[bytes, Endpoint] = {}
        self._gather_done_cb: Callable[[list[IceCandidate]], None] | None = None
        self._gather_deadline = None
        self._check_transactions: dict[bytes, IceCandidate] = {}
        self._on_nominated: Callable[[Endpoint], None] | None = None
        self.checks_sent = 0
        self.checks_received = 0

    # -- gathering ---------------------------------------------------------

    def gather(self, on_complete: Callable[[list[IceCandidate]], None]) -> None:
        """Collect host/srflx/relay candidates, then invoke the callback.

        In relay-only (privacy) mode, host and server-reflexive
        candidates are suppressed so no real address is ever signaled.
        """
        self._gather_done_cb = on_complete
        if not self.relay_only:
            self.local_candidates.append(
                IceCandidate.make(CandidateType.HOST, Endpoint(self.local_ip, self.local_port))
            )
        if self.relay_endpoint is not None:
            self.local_candidates.append(IceCandidate.make(CandidateType.RELAY, self.relay_endpoint))
        if self.relay_only or not self.stun_servers:
            self._finish_gathering()
            return
        for server in self.stun_servers:
            transaction_id = self.rand.bytes(12)
            self._gather_pending[transaction_id] = server
            request = StunMessage(StunMethod.BINDING, StunClass.REQUEST, transaction_id)
            request.add(AttributeType.SOFTWARE, b"repro-ice")
            self._send(server, encode_stun(request))
        self._gather_deadline = self.loop.schedule(_GATHER_TIMEOUT, self._finish_gathering)

    def _finish_gathering(self) -> None:
        if self._gather_done_cb is None:
            return
        callback, self._gather_done_cb = self._gather_done_cb, None
        if self._gather_deadline is not None:
            self._gather_deadline.cancel()
        self._gather_pending.clear()
        callback(list(self.local_candidates))

    def _on_gather_response(self, message: StunMessage) -> None:
        self._gather_pending.pop(message.transaction_id, None)
        mapped = message.xor_mapped_address()
        if mapped is not None:
            known = {c.endpoint for c in self.local_candidates}
            if mapped not in known:
                self.local_candidates.append(IceCandidate.make(CandidateType.SRFLX, mapped))
        if not self._gather_pending:
            self._finish_gathering()

    # -- connectivity checks -------------------------------------------------

    def set_remote(self, candidates: list[IceCandidate], ufrag: str, pwd: str) -> None:
        """Set remote."""
        self.remote_candidates = sorted(candidates, key=lambda c: -c.priority)
        self.remote_ufrag = ufrag
        self.remote_pwd = pwd

    def start_checks(self, on_nominated: Callable[[Endpoint], None]) -> None:
        """Controlling side: probe every remote candidate; first success wins."""
        if self.remote_ufrag is None:
            raise ProtocolError("start_checks before set_remote")
        self.controlling = True
        self._on_nominated = on_nominated
        for candidate in self.remote_candidates:
            self._send_check(candidate, attempt=1)

    def _send_check(self, candidate: IceCandidate, attempt: int) -> None:
        if self.nominated_remote is not None:
            return
        transaction_id = self.rand.bytes(12)
        self._check_transactions[transaction_id] = candidate
        request = StunMessage(StunMethod.BINDING, StunClass.REQUEST, transaction_id)
        request.add(AttributeType.USERNAME, f"{self.remote_ufrag}:{self.ufrag}".encode())
        request.add(AttributeType.PRIORITY, candidate.priority.to_bytes(4, "big"))
        request.add(AttributeType.ICE_CONTROLLING, b"\x00" * 8)
        request.add(AttributeType.USE_CANDIDATE, b"")
        # Short-term credential: prove knowledge of the remote's ICE pwd.
        if self.remote_pwd:
            add_message_integrity(request, self.remote_pwd.encode())
        self.checks_sent += 1
        self._send(candidate.endpoint, encode_stun(request))
        if attempt < _MAX_CHECK_SENDS:
            self.loop.schedule(_CHECK_RETRANSMIT, self._send_check, candidate, attempt + 1)

    def _on_check_response(self, message: StunMessage, src: Endpoint) -> None:
        candidate = self._check_transactions.pop(message.transaction_id, None)
        if candidate is None or self.nominated_remote is not None:
            return
        self.nominated_remote = candidate.endpoint
        if self._on_nominated is not None:
            self._on_nominated(candidate.endpoint)

    # -- inbound STUN ---------------------------------------------------------

    def handle_stun(self, message: StunMessage, src: Endpoint) -> None:
        """Process one inbound STUN message (already decoded)."""
        if message.msg_class is StunClass.SUCCESS:
            if message.transaction_id in self._gather_pending:
                self._on_gather_response(message)
            else:
                self._on_check_response(message, src)
            return
        if message.msg_class is not StunClass.REQUEST or message.method is not StunMethod.BINDING:
            return
        # Inbound connectivity check from the remote peer.
        username = message.username()
        expected = f"{self.ufrag}:{self.remote_ufrag}" if self.remote_ufrag else None
        if expected is not None and username != expected:
            return  # not for us (stale or cross-session); drop silently
        # A check bearing a username must prove knowledge of our pwd.
        authenticated = username is not None and username == expected
        if username is not None and not verify_message_integrity(message, self.pwd.encode()):
            return
        self.checks_received += 1
        self.observed_remotes.append((self.loop.now, src))
        response = StunMessage(StunMethod.BINDING, StunClass.SUCCESS, message.transaction_id)
        response.add(AttributeType.XOR_MAPPED_ADDRESS, encode_xor_address(src, message.transaction_id))
        self._send(src, encode_stun(response))
        if not self.controlling and message.attr(AttributeType.USE_CANDIDATE) is not None:
            if self.nominated_remote is None:
                self.nominated_remote = src
                if self._on_nominated is not None:
                    self._on_nominated(src)
                return
        if authenticated and self.nominated_remote is not None and src != self.nominated_remote:
            # Peer-reflexive switch: an *authenticated* check from a new
            # transport address means the remote's mapping changed (NAT
            # rebind). Follow it, or every reply keeps black-holing at
            # the stale address. Unauthenticated traffic never switches.
            self.nominated_remote = src
            if self._on_nominated is not None:
                self._on_nominated(src)

    def refresh(self) -> None:
        """Send one authenticated check to the nominated remote.

        The RFC 7675-style consent/keepalive: after a local NAT rebind
        the first outbound datagram re-punches a fresh mapping, and the
        authenticated check lets the remote's agent switch its nominated
        address to the new mapping (see :meth:`handle_stun`).
        """
        if self.nominated_remote is None or self.remote_ufrag is None:
            return
        transaction_id = self.rand.bytes(12)
        request = StunMessage(StunMethod.BINDING, StunClass.REQUEST, transaction_id)
        request.add(AttributeType.USERNAME, f"{self.remote_ufrag}:{self.ufrag}".encode())
        if self.remote_pwd:
            add_message_integrity(request, self.remote_pwd.encode())
        self.checks_sent += 1
        self._send(self.nominated_remote, encode_stun(request))

    def wait_nominated(self, on_nominated: Callable[[Endpoint], None]) -> None:
        """Controlled side: register the nomination callback."""
        self._on_nominated = on_nominated
        if self.nominated_remote is not None:
            on_nominated(self.nominated_remote)
