"""Self-signed certificates for the DTLS-like handshake.

WebRTC peers authenticate DTLS with self-signed certificates whose
fingerprints travel in the signaled SDP. We model a certificate as a
random secret plus a derived public value; the fingerprint is the
SHA-256 of the public value formatted the way SDP ``a=fingerprint``
lines are. The key *schedule* built on top (see :mod:`repro.webrtc.dtls`)
is a simulation of the protocol flow, not real public-key cryptography.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.util.rand import DeterministicRandom


@dataclass(frozen=True)
class Certificate:
    """A self-signed certificate (toy keypair: public = SHA-256(secret))."""

    subject: str
    secret: bytes = field(repr=False)

    @classmethod
    def generate(cls, rand: DeterministicRandom, subject: str) -> "Certificate":
        """Generate."""
        return cls(subject=subject, secret=rand.bytes(32))

    @property
    def public_key(self) -> bytes:
        """Public key."""
        return hashlib.sha256(b"pub:" + self.secret).digest()

    @property
    def fingerprint(self) -> str:
        """SDP-style ``sha-256 AA:BB:...`` fingerprint of the public key."""
        digest = hashlib.sha256(self.public_key).hexdigest().upper()
        return "sha-256 " + ":".join(digest[i : i + 2] for i in range(0, len(digest), 2))

    @staticmethod
    def fingerprint_of(public_key: bytes) -> str:
        """Fingerprint of."""
        digest = hashlib.sha256(public_key).hexdigest().upper()
        return "sha-256 " + ":".join(digest[i : i + 2] for i in range(0, len(digest), 2))
