"""TURN relay server and client (RFC 5766-shaped).

TURN is the paper's §V-C mitigation for the peer IP leak: when peers
publish only relayed candidates and tunnel all traffic through the relay,
remote peers observe the TURN server's address instead of the viewer's.
The paper notes two adult platforms already do this, at substantial
relay-bandwidth cost — which :class:`TurnServer` accounts so the ablation
benchmark can quantify the trade-off.
"""

from __future__ import annotations

from typing import Callable

from repro.net.addresses import Endpoint
from repro.net.network import Host, UdpSocket
from repro.util.rand import DeterministicRandom
from repro.webrtc.stun import (
    AttributeType,
    StunClass,
    StunMessage,
    StunMethod,
    decode_stun,
    encode_stun,
    encode_xor_address,
    is_stun_datagram,
)


class TurnServer:
    """Allocates relayed ports and forwards traffic in both directions."""

    DEFAULT_PORT = 3478

    def __init__(self, host: Host, port: int = DEFAULT_PORT) -> None:
        self.host = host
        self.socket = host.bind_udp(port, self._on_control_datagram)
        # client wire address -> relay socket serving that client
        self._allocations: dict[Endpoint, UdpSocket] = {}
        self._clients_by_relay_port: dict[int, Endpoint] = {}
        self.relayed_bytes = 0
        self.allocations_made = 0

    @property
    def endpoint(self) -> Endpoint:
        """Endpoint."""
        return Endpoint(self.host.public_ip, self.socket.port)

    # -- control plane -----------------------------------------------------

    def _on_control_datagram(self, data: bytes, src: Endpoint, sock: UdpSocket) -> None:
        if not is_stun_datagram(data):
            return
        message = decode_stun(data)
        if message.method is StunMethod.ALLOCATE and message.msg_class is StunClass.REQUEST:
            self._handle_allocate(message, src, sock)
        elif message.method is StunMethod.SEND and message.msg_class is StunClass.INDICATION:
            self._handle_send_indication(message, src)

    def _handle_allocate(self, message: StunMessage, src: Endpoint, sock: UdpSocket) -> None:
        if src not in self._allocations:
            relay_socket = self.host.bind_udp(0, self._on_relay_datagram)
            self._allocations[src] = relay_socket
            self._clients_by_relay_port[relay_socket.port] = src
            self.allocations_made += 1
        relay_socket = self._allocations[src]
        relayed = Endpoint(self.host.public_ip, relay_socket.port)
        response = StunMessage(StunMethod.ALLOCATE, StunClass.SUCCESS, message.transaction_id)
        response.add(AttributeType.XOR_RELAYED_ADDRESS, encode_xor_address(relayed, message.transaction_id))
        sock.send(src, encode_stun(response))

    def _handle_send_indication(self, message: StunMessage, src: Endpoint) -> None:
        relay_socket = self._allocations.get(src)
        if relay_socket is None:
            return  # no allocation; real TURN would return 437
        peer = message.xor_peer_address()
        payload = message.attr(AttributeType.DATA)
        if peer is None or payload is None:
            return
        self.relayed_bytes += len(payload)
        relay_socket.send(peer, payload)

    # -- data plane (peer -> client direction) -------------------------------

    def _on_relay_datagram(self, data: bytes, src: Endpoint, sock: UdpSocket) -> None:
        client = self._clients_by_relay_port.get(sock.port)
        if client is None:
            return
        self.relayed_bytes += len(data)
        indication = StunMessage(StunMethod.DATA, StunClass.INDICATION, b"\x00" * 12)
        indication.add(AttributeType.XOR_PEER_ADDRESS, encode_xor_address(src, b"\x00" * 12))
        indication.add(AttributeType.DATA, data)
        self.socket.send(client, encode_stun(indication))


class TurnClient:
    """Client side of a TURN allocation, sharing the owner's socket.

    The owning peer connection routes TURN control traffic here; data
    received in DATA indications is surfaced through ``on_relayed_data``
    as if it had arrived directly from the peer.
    """

    def __init__(
        self,
        rand: DeterministicRandom,
        server: Endpoint,
        raw_send: Callable[[Endpoint, bytes], None],
        on_relayed_data: Callable[[bytes, Endpoint], None],
    ) -> None:
        self.rand = rand
        self.server = server
        self._raw_send = raw_send
        self.on_relayed_data = on_relayed_data
        self.relayed_endpoint: Endpoint | None = None
        self._allocate_txn: bytes | None = None
        self._on_allocated: Callable[[Endpoint], None] | None = None
        self.bytes_via_relay = 0

    def allocate(self, on_allocated: Callable[[Endpoint], None]) -> None:
        """Allocate."""
        self._on_allocated = on_allocated
        self._allocate_txn = self.rand.bytes(12)
        request = StunMessage(StunMethod.ALLOCATE, StunClass.REQUEST, self._allocate_txn)
        self._raw_send(self.server, encode_stun(request))

    def send_via_relay(self, peer: Endpoint, payload: bytes) -> None:
        """Send via relay."""
        indication = StunMessage(StunMethod.SEND, StunClass.INDICATION, self.rand.bytes(12))
        indication.add(AttributeType.XOR_PEER_ADDRESS, encode_xor_address(peer, b"\x00" * 12))
        indication.add(AttributeType.DATA, payload)
        self.bytes_via_relay += len(payload)
        self._raw_send(self.server, encode_stun(indication))

    def handle_stun(self, message: StunMessage, src: Endpoint) -> bool:
        """Consume TURN-related messages; returns True if handled."""
        if (
            message.method is StunMethod.ALLOCATE
            and message.msg_class is StunClass.SUCCESS
            and message.transaction_id == self._allocate_txn
        ):
            self.relayed_endpoint = message.xor_relayed_address()
            if self._on_allocated is not None and self.relayed_endpoint is not None:
                self._on_allocated(self.relayed_endpoint)
            return True
        if message.method is StunMethod.DATA and message.msg_class is StunClass.INDICATION:
            peer = message.xor_peer_address()
            payload = message.attr(AttributeType.DATA)
            if peer is not None and payload is not None:
                self.on_relayed_data(payload, peer)
            return True
        return False
