"""A WebRTC-like stack: STUN, ICE, DTLS, data channels, TURN.

The paper's findings all hinge on observable WebRTC behaviours:

- the dynamic detector confirms PDN customers by spotting *STUN binding
  requests followed by DTLS handshakes between candidate peer pairs*;
- the IP-leak risk exists because ICE exchanges candidate transport
  addresses in the clear through the signaling server and STUN;
- the pollution attack works *despite* DTLS-encrypted peer links,
  because integrity is never checked above the transport;
- the TURN-relay mitigation hides peer IPs at bandwidth cost.

This package implements those behaviours with wire-accurate STUN
framing (magic cookie, XOR-MAPPED-ADDRESS), a DTLS-shaped handshake and
record layer (authenticated, tamper-evident; the key schedule is a
simulation, not real cryptography), SCTP-like reliable data channels,
and a TURN relay server.
"""

from repro.webrtc.stun import (
    StunAttribute,
    StunMessage,
    StunMethod,
    StunClass,
    StunServer,
    decode_stun,
    encode_stun,
    is_stun_datagram,
)
from repro.webrtc.certificates import Certificate
from repro.webrtc.dtls import DtlsSession, is_dtls_datagram
from repro.webrtc.ice import IceAgent, IceCandidate, CandidateType
from repro.webrtc.datachannel import DataChannelLayer
from repro.webrtc.peer_connection import PeerConnection, RtcConfig, SessionDescription
from repro.webrtc.turn import TurnServer
from repro.webrtc.sdp import candidate_ips, parse_sdp, render_sdp

__all__ = [
    "StunAttribute",
    "StunMessage",
    "StunMethod",
    "StunClass",
    "StunServer",
    "decode_stun",
    "encode_stun",
    "is_stun_datagram",
    "Certificate",
    "DtlsSession",
    "is_dtls_datagram",
    "IceAgent",
    "IceCandidate",
    "CandidateType",
    "DataChannelLayer",
    "PeerConnection",
    "RtcConfig",
    "SessionDescription",
    "TurnServer",
    "render_sdp",
    "parse_sdp",
    "candidate_ips",
]
