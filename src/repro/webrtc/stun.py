"""STUN message codec and server (RFC 5389 framing, RFC 5766 methods).

The encoding is wire-accurate where it matters for the paper: 20-byte
header with the 0x2112A442 magic cookie, 4-byte-aligned TLV attributes,
and XOR-MAPPED-ADDRESS obfuscation. The dynamic PDN detector
(:mod:`repro.detection.traffic`) recognises STUN traffic exactly the way
Wireshark does — by the two zero top bits of the message type and the
magic cookie — and extracts the candidate addresses carried inside,
which is also precisely what makes the peer IP leak observable.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.addresses import Endpoint
from repro.net.network import UdpSocket
from repro.util.errors import StunDecodeError

MAGIC_COOKIE = 0x2112A442
HEADER_LEN = 20


class StunMethod(enum.IntEnum):
    """STUN/TURN methods used by the stack."""

    BINDING = 0x001
    ALLOCATE = 0x003  # TURN
    SEND = 0x006  # TURN send indication
    DATA = 0x007  # TURN data indication


class StunClass(enum.IntEnum):
    """StunClass."""
    REQUEST = 0b00
    INDICATION = 0b01
    SUCCESS = 0b10
    ERROR = 0b11


class AttributeType(enum.IntEnum):
    """AttributeType."""
    MAPPED_ADDRESS = 0x0001
    USERNAME = 0x0006
    MESSAGE_INTEGRITY = 0x0008
    ERROR_CODE = 0x0009
    XOR_PEER_ADDRESS = 0x0012
    DATA = 0x0013
    XOR_RELAYED_ADDRESS = 0x0016
    XOR_MAPPED_ADDRESS = 0x0020
    PRIORITY = 0x0024
    USE_CANDIDATE = 0x0025
    SOFTWARE = 0x8022
    ICE_CONTROLLED = 0x8029
    ICE_CONTROLLING = 0x802A


@dataclass(frozen=True)
class StunAttribute:
    """One TLV attribute (value held un-padded)."""

    attr_type: int
    value: bytes


@dataclass
class StunMessage:
    """A decoded STUN message."""

    method: StunMethod
    msg_class: StunClass
    transaction_id: bytes
    attributes: list[StunAttribute] = field(default_factory=list)

    def attr(self, attr_type: int) -> bytes | None:
        """Attr."""
        for attribute in self.attributes:
            if attribute.attr_type == attr_type:
                return attribute.value
        return None

    def add(self, attr_type: int, value: bytes) -> "StunMessage":
        """Add."""
        self.attributes.append(StunAttribute(attr_type, value))
        return self

    # -- typed attribute helpers ----------------------------------------

    def xor_mapped_address(self) -> Endpoint | None:
        """Xor mapped address."""
        raw = self.attr(AttributeType.XOR_MAPPED_ADDRESS)
        return decode_xor_address(raw, self.transaction_id) if raw else None

    def xor_relayed_address(self) -> Endpoint | None:
        """Xor relayed address."""
        raw = self.attr(AttributeType.XOR_RELAYED_ADDRESS)
        return decode_xor_address(raw, self.transaction_id) if raw else None

    def xor_peer_address(self) -> Endpoint | None:
        """Xor peer address."""
        raw = self.attr(AttributeType.XOR_PEER_ADDRESS)
        return decode_xor_address(raw, self.transaction_id) if raw else None

    def username(self) -> str | None:
        """Username."""
        raw = self.attr(AttributeType.USERNAME)
        return raw.decode("utf-8") if raw is not None else None


def _encode_type(method: StunMethod, msg_class: StunClass) -> int:
    """Pack method + class into the 14-bit STUN message type."""
    m = int(method)
    c = int(msg_class)
    return (
        ((m & 0xF80) << 2)
        | ((c & 0x2) << 7)
        | ((m & 0x070) << 1)
        | ((c & 0x1) << 4)
        | (m & 0x00F)
    )


def _decode_type(msg_type: int) -> tuple[StunMethod, StunClass]:
    c = ((msg_type >> 7) & 0x2) | ((msg_type >> 4) & 0x1)
    m = ((msg_type >> 2) & 0xF80) | ((msg_type >> 1) & 0x070) | (msg_type & 0x00F)
    try:
        return StunMethod(m), StunClass(c)
    except ValueError as exc:
        raise StunDecodeError(f"unknown STUN method/class in type 0x{msg_type:04x}") from exc


def encode_xor_address(endpoint: Endpoint, transaction_id: bytes) -> bytes:
    """Encode an IPv4 endpoint as an XOR-*-ADDRESS attribute value."""
    xport = endpoint.port ^ (MAGIC_COOKIE >> 16)
    octets = [int(o) for o in endpoint.ip.split(".")]
    xaddr = struct.unpack("!I", bytes(octets))[0] ^ MAGIC_COOKIE
    return struct.pack("!BBHI", 0, 0x01, xport, xaddr)


def decode_xor_address(value: bytes, transaction_id: bytes) -> Endpoint:
    """Decode xor address."""
    if len(value) != 8:
        raise StunDecodeError(f"bad XOR address length {len(value)}")
    _, family, xport, xaddr = struct.unpack("!BBHI", value)
    if family != 0x01:
        raise StunDecodeError(f"unsupported address family {family}")
    port = xport ^ (MAGIC_COOKIE >> 16)
    addr = xaddr ^ MAGIC_COOKIE
    ip = ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    return Endpoint(ip, port)


def encode_stun(message: StunMessage) -> bytes:
    """Serialise a STUN message to wire bytes."""
    if len(message.transaction_id) != 12:
        raise StunDecodeError("transaction id must be 12 bytes")
    body = b""
    for attribute in message.attributes:
        padded_len = (len(attribute.value) + 3) & ~3
        body += struct.pack("!HH", int(attribute.attr_type), len(attribute.value))
        body += attribute.value + b"\x00" * (padded_len - len(attribute.value))
    header = struct.pack(
        "!HHI",
        _encode_type(message.method, message.msg_class),
        len(body),
        MAGIC_COOKIE,
    )
    return header + message.transaction_id + body


def decode_stun(data: bytes) -> StunMessage:
    """Parse wire bytes into a STUN message, validating framing."""
    if len(data) < HEADER_LEN:
        raise StunDecodeError("datagram shorter than STUN header")
    msg_type, length, cookie = struct.unpack("!HHI", data[:8])
    if msg_type & 0xC000:
        raise StunDecodeError("top bits of STUN type must be zero")
    if cookie != MAGIC_COOKIE:
        raise StunDecodeError("bad magic cookie")
    if len(data) != HEADER_LEN + length:
        raise StunDecodeError(f"length field {length} does not match datagram")
    transaction_id = data[8:20]
    method, msg_class = _decode_type(msg_type)
    message = StunMessage(method, msg_class, transaction_id)
    offset = HEADER_LEN
    while offset < len(data):
        if offset + 4 > len(data):
            raise StunDecodeError("truncated attribute header")
        attr_type, attr_len = struct.unpack("!HH", data[offset : offset + 4])
        offset += 4
        if offset + attr_len > len(data):
            raise StunDecodeError("truncated attribute value")
        value = data[offset : offset + attr_len]
        offset += (attr_len + 3) & ~3
        message.attributes.append(StunAttribute(attr_type, value))
    return message


def is_stun_datagram(data: bytes) -> bool:
    """Cheap demultiplexing check (RFC 7983 style)."""
    return len(data) >= HEADER_LEN and data[0] < 4 and data[4:8] == struct.pack("!I", MAGIC_COOKIE)


def add_message_integrity(message: StunMessage, key: bytes) -> StunMessage:
    """Append a MESSAGE-INTEGRITY attribute (HMAC over the message).

    RFC 5389 computes HMAC-SHA1 over the message up to the attribute;
    this implementation MACs the encoding of all preceding attributes
    with HMAC-SHA256 (stronger, same protocol role: a short-term
    credential proving knowledge of the ICE password)."""
    import hashlib
    import hmac as hmac_mod

    digest = hmac_mod.new(key, encode_stun(message), hashlib.sha256).digest()[:20]
    message.add(AttributeType.MESSAGE_INTEGRITY, digest)
    return message


def verify_message_integrity(message: StunMessage, key: bytes) -> bool:
    """Check the MESSAGE-INTEGRITY attribute; False if absent or wrong."""
    import hashlib
    import hmac as hmac_mod

    mac = message.attr(AttributeType.MESSAGE_INTEGRITY)
    if mac is None:
        return False
    stripped = StunMessage(
        message.method,
        message.msg_class,
        message.transaction_id,
        [a for a in message.attributes if a.attr_type != AttributeType.MESSAGE_INTEGRITY],
    )
    expected = hmac_mod.new(key, encode_stun(stripped), hashlib.sha256).digest()[:20]
    return hmac_mod.compare_digest(mac, expected)


class StunServer:
    """A classic STUN binding server.

    Replies to binding requests with the XOR-MAPPED-ADDRESS it observed,
    which is how NATed peers discover their server-reflexive candidates.
    """

    DEFAULT_PORT = 3478

    def __init__(self, host, port: int = DEFAULT_PORT, software: str = "repro-stun") -> None:
        self.host = host
        self.software = software
        self.socket: UdpSocket = host.bind_udp(port, self._on_datagram)
        self.requests_served = 0

    @property
    def endpoint(self) -> Endpoint:
        """Endpoint."""
        return Endpoint(self.host.public_ip, self.socket.port)

    def _on_datagram(self, data: bytes, src: Endpoint, sock: UdpSocket) -> None:
        if not is_stun_datagram(data):
            return
        try:
            request = decode_stun(data)
        except StunDecodeError:
            return
        if request.method is not StunMethod.BINDING or request.msg_class is not StunClass.REQUEST:
            return
        response = StunMessage(StunMethod.BINDING, StunClass.SUCCESS, request.transaction_id)
        response.add(AttributeType.XOR_MAPPED_ADDRESS, encode_xor_address(src, request.transaction_id))
        response.add(AttributeType.SOFTWARE, self.software.encode())
        self.requests_served += 1
        sock.send(src, encode_stun(response))
