"""SDP serialization for session descriptions (RFC 4566/8839 subset).

The signaling relay carries real SDP text, as browsers exchange it: the
``a=ice-ufrag``/``a=ice-pwd`` credentials, the ``a=fingerprint`` line the
DTLS handshake authenticates against, the ``a=setup`` role, and one
``a=candidate`` line per ICE candidate. Rendering and parsing this text
is also what makes the privacy analysis concrete — the candidate lines
*are* the IP leak.
"""

from __future__ import annotations

from repro.net.addresses import Endpoint
from repro.util.errors import SdpError
from repro.webrtc.ice import CandidateType, IceCandidate
from repro.webrtc.peer_connection import SessionDescription

_SETUP_BY_KIND = {"offer": "actpass", "answer": "active"}
_KIND_BY_SETUP = {"actpass": "offer", "active": "answer", "passive": "answer"}


def render_sdp(description: SessionDescription) -> str:
    """Serialise a session description to SDP text."""
    lines = [
        "v=0",
        "o=- 0 0 IN IP4 0.0.0.0",
        "s=-",
        "t=0 0",
        "m=application 9 UDP/DTLS/SCTP webrtc-datachannel",
        "c=IN IP4 0.0.0.0",
        f"a=ice-ufrag:{description.ufrag}",
        f"a=ice-pwd:{description.pwd}",
        f"a=fingerprint:{description.fingerprint}",
        f"a=setup:{_SETUP_BY_KIND.get(description.kind, 'actpass')}",
        "a=mid:0",
        "a=sctp-port:5000",
    ]
    for index, candidate in enumerate(description.candidates, start=1):
        lines.append(
            f"a=candidate:{candidate.foundation.replace(' ', '-')} 1 udp "
            f"{candidate.priority} {candidate.endpoint.ip} {candidate.endpoint.port} "
            f"typ {candidate.cand_type.value}"
        )
    return "\r\n".join(lines) + "\r\n"


def parse_sdp(text: str) -> SessionDescription:
    """Parse SDP text back into a session description."""
    ufrag = pwd = fingerprint = None
    setup = "actpass"
    candidates: list[IceCandidate] = []
    for raw_line in text.replace("\r\n", "\n").splitlines():
        line = raw_line.strip()
        if not line.startswith("a="):
            continue
        attribute = line[2:]
        if attribute.startswith("ice-ufrag:"):
            ufrag = attribute.split(":", 1)[1]
        elif attribute.startswith("ice-pwd:"):
            pwd = attribute.split(":", 1)[1]
        elif attribute.startswith("fingerprint:"):
            fingerprint = attribute.split(":", 1)[1]
        elif attribute.startswith("setup:"):
            setup = attribute.split(":", 1)[1]
        elif attribute.startswith("candidate:"):
            candidates.append(_parse_candidate(attribute))
    if ufrag is None or pwd is None or fingerprint is None:
        raise SdpError("SDP missing ice-ufrag, ice-pwd, or fingerprint")
    return SessionDescription(
        kind=_KIND_BY_SETUP.get(setup, "offer"),
        ufrag=ufrag,
        pwd=pwd,
        fingerprint=fingerprint,
        candidates=candidates,
    )


def _parse_candidate(attribute: str) -> IceCandidate:
    # a=candidate:<foundation> <component> udp <priority> <ip> <port> typ <type>
    parts = attribute.split(":", 1)[1].split()
    if len(parts) < 8 or parts[6] != "typ":
        raise SdpError(f"malformed candidate line: {attribute!r}")
    try:
        return IceCandidate(
            cand_type=CandidateType(parts[7]),
            endpoint=Endpoint(parts[4], int(parts[5])),
            priority=int(parts[3]),
            foundation=parts[0],
        )
    except (ValueError, KeyError) as exc:
        raise SdpError(f"malformed candidate line: {attribute!r}") from exc


def candidate_ips(text: str) -> list[str]:
    """Every transport address disclosed by an SDP blob (the leak view)."""
    return [c.endpoint.ip for c in parse_sdp(text).candidates]
