"""A DTLS-shaped handshake and record layer.

What is faithful to DTLS 1.2 here is everything the paper's analyses
observe or depend on:

- record framing (content type, version ``0xFEFD``, epoch, sequence
  number, length) so the traffic classifier can demultiplex DTLS from
  STUN exactly like Wireshark does;
- a certificate exchange verified against the fingerprint signaled in
  the SDP — a fingerprint mismatch aborts the handshake;
- an encrypted, MAC-authenticated application-data epoch, so on-path
  tampering with peer-to-peer segments is detected (which is *why* the
  paper's pollution attack must inject before encryption, at the fake
  CDN).

The key schedule itself is a simulation (`SHA-256` over public values
and nonces) — it models the flow, not the cryptographic strength.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
from typing import Callable

from repro.net.clock import EventLoop
from repro.util.encoding import b64url_decode, b64url_encode
from repro.util.errors import DtlsHandshakeError, DtlsRecordError
from repro.util.rand import DeterministicRandom
from repro.webrtc.certificates import Certificate

DTLS_VERSION = 0xFEFD  # DTLS 1.2 on the wire
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPDATA = 23

_RECORD_HEADER = struct.Struct("!BHHQH")  # type, version, epoch, seq, length
_MAC_LEN = 16
_HANDSHAKE_RETRANSMIT = 0.5
_MAX_RETRANSMITS = 6


def is_dtls_datagram(data: bytes) -> bool:
    """RFC 7983-style demultiplexing check for DTLS records."""
    if len(data) < _RECORD_HEADER.size:
        return False
    if not 20 <= data[0] <= 63:
        return False
    (version,) = struct.unpack("!H", data[1:3])
    return version == DTLS_VERSION


def _encode_record(content_type: int, epoch: int, seq: int, payload: bytes) -> bytes:
    return _RECORD_HEADER.pack(content_type, DTLS_VERSION, epoch, seq, len(payload)) + payload


def _decode_record(data: bytes) -> tuple[int, int, int, bytes]:
    if len(data) < _RECORD_HEADER.size:
        raise DtlsRecordError("datagram shorter than record header")
    content_type, version, epoch, seq, length = _RECORD_HEADER.unpack(data[: _RECORD_HEADER.size])
    if version != DTLS_VERSION:
        raise DtlsRecordError(f"bad DTLS version 0x{version:04x}")
    payload = data[_RECORD_HEADER.size :]
    if len(payload) != length:
        raise DtlsRecordError("record length mismatch")
    return content_type, epoch, seq, payload


def _keystream(key: bytes, seq: int, length: int) -> bytes:
    """Per-record keystream: one HMAC-derived block, tiled to length.

    (A real cipher derives fresh blocks per counter; tiling one block
    keeps the simulation tamper-evident — the MAC does the real work —
    at C speed for multi-megabyte segment transfers.)
    """
    if length == 0:
        return b""
    block = hmac.new(key, struct.pack("!Q", seq), hashlib.sha256).digest()
    return (block * (length // len(block) + 1))[:length]


def _xor(data: bytes, pad: bytes) -> bytes:
    """Constant-time-ish XOR via big-int ops (C speed, no Python loop)."""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(pad[: len(data)], "big")
    ).to_bytes(len(data), "big")


class DtlsSession:
    """One end of a DTLS association over an unreliable datagram path.

    The caller supplies ``send`` (raw datagram out) and feeds inbound
    datagrams to :meth:`handle_datagram`. ``role`` is ``"client"`` for
    the side that initiates (in WebRTC, per the SDP ``setup`` attribute).
    """

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        role: str,
        certificate: Certificate,
        expected_fingerprint: str | None,
        send: Callable[[bytes], None],
        on_established: Callable[[], None] | None = None,
        on_data: Callable[[bytes], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        if role not in ("client", "server"):
            raise DtlsHandshakeError(f"role must be client or server, got {role!r}")
        self.loop = loop
        self.rand = rand
        self.role = role
        self.certificate = certificate
        self.expected_fingerprint = expected_fingerprint
        self._send_raw = send
        self.on_established = on_established
        self.on_data = on_data
        self.on_error = on_error

        self.established = False
        self.failed = False
        self.local_random = rand.bytes(32)
        self.remote_random: bytes | None = None
        self.remote_public_key: bytes | None = None
        self._send_seq = 0
        self._handshake_seq = 0
        self._write_key: bytes | None = None
        self._read_key: bytes | None = None
        self._last_flight: list[bytes] = []
        self._retransmits = 0
        self._retransmit_timer = None
        self.records_sent = 0
        self.records_received = 0
        self.auth_failures = 0

    # -- handshake driving -------------------------------------------------

    def start(self) -> None:
        """Client sends ClientHello; server waits."""
        if self.role == "client":
            self._send_handshake(
                {"msg": "client_hello", "random": b64url_encode(self.local_random)}
            )

    def _send_handshake(self, *messages: dict) -> None:
        # A whole flight travels in one record, like DTLS packing multiple
        # handshake messages per record: per-datagram network jitter can
        # reorder separate datagrams, but never splits a flight.
        payload = json.dumps({"flight": list(messages)}, sort_keys=True).encode()
        record = _encode_record(CONTENT_HANDSHAKE, 0, self._next_seq(), payload)
        self._last_flight = [record]
        self._retransmits = 0
        self.records_sent += 1
        self._send_raw(record)
        self._arm_retransmit()

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        if self.established or self.failed:
            return
        self._retransmit_timer = self.loop.schedule(_HANDSHAKE_RETRANSMIT, self._retransmit)

    def _retransmit(self) -> None:
        if self.established or self.failed or not self._last_flight:
            return
        self._retransmits += 1
        if self._retransmits > _MAX_RETRANSMITS:
            self._fail(DtlsHandshakeError("handshake timed out"))
            return
        for record in self._last_flight:
            self.records_sent += 1
            self._send_raw(record)
        self._retransmit_timer = self.loop.schedule(_HANDSHAKE_RETRANSMIT, self._retransmit)

    def _next_seq(self) -> int:
        seq = self._send_seq
        self._send_seq += 1
        return seq

    def _fail(self, error: Exception) -> None:
        self.failed = True
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        if self.on_error is not None:
            self.on_error(error)

    # -- key schedule -------------------------------------------------------

    def _derive_keys(self) -> None:
        assert self.remote_random is not None and self.remote_public_key is not None
        publics = sorted([self.certificate.public_key, self.remote_public_key])
        randoms = sorted([self.local_random, self.remote_random])
        master = hashlib.sha256(b"master" + publics[0] + publics[1] + randoms[0] + randoms[1]).digest()
        client_key = hmac.new(master, b"client-write", hashlib.sha256).digest()
        server_key = hmac.new(master, b"server-write", hashlib.sha256).digest()
        if self.role == "client":
            self._write_key, self._read_key = client_key, server_key
        else:
            self._write_key, self._read_key = server_key, client_key

    def _transcript(self) -> bytes:
        """Canonical handshake transcript: client random then server random."""
        assert self.remote_random is not None
        if self.role == "client":
            return self.local_random + self.remote_random
        return self.remote_random + self.local_random

    def _finished_mac(self, key: bytes) -> str:
        digest = hmac.new(key, b"finished" + self._transcript(), hashlib.sha256).digest()[:16]
        return b64url_encode(digest)

    def _verify_certificate(self, message: dict) -> bytes:
        public_key = b64url_decode(message["public_key"])
        fingerprint = Certificate.fingerprint_of(public_key)
        if self.expected_fingerprint is not None and fingerprint != self.expected_fingerprint:
            self.auth_failures += 1
            raise DtlsHandshakeError(
                f"certificate fingerprint mismatch: got {fingerprint[:24]}..., "
                f"expected {self.expected_fingerprint[:24]}..."
            )
        return public_key

    # -- inbound ------------------------------------------------------------

    def handle_datagram(self, data: bytes) -> None:
        """Handle datagram."""
        if self.failed:
            return
        try:
            content_type, epoch, seq, payload = _decode_record(data)
        except DtlsRecordError as exc:
            self._fail(exc)
            return
        self.records_received += 1
        if content_type == CONTENT_HANDSHAKE and epoch == 0:
            try:
                body = json.loads(payload.decode())
            except (ValueError, UnicodeDecodeError) as exc:
                self._fail(DtlsHandshakeError(f"bad handshake payload: {exc}"))
                return
            try:
                for message in body.get("flight", []):
                    self._handle_handshake(message)
            except DtlsHandshakeError as exc:
                self._fail(exc)
        elif content_type == CONTENT_APPDATA and epoch == 1:
            self._handle_appdata(seq, payload)

    def _handle_handshake(self, message: dict) -> None:
        kind = message.get("msg")
        if kind == "client_hello" and self.role == "server":
            if self.remote_random is None:
                self.remote_random = b64url_decode(message["random"])
            self._send_handshake(
                {"msg": "server_hello", "random": b64url_encode(self.local_random)},
                {
                    "msg": "certificate",
                    "subject": self.certificate.subject,
                    "public_key": b64url_encode(self.certificate.public_key),
                },
            )
        elif kind == "server_hello" and self.role == "client":
            self.remote_random = b64url_decode(message["random"])
        elif kind == "certificate" and self.role == "client":
            if self.remote_random is None:
                return  # stale retransmission; the server will resend the flight
            if self._write_key is not None:
                return  # duplicate flight already processed
            self.remote_public_key = self._verify_certificate(message)
            self._derive_keys()
            assert self._write_key is not None
            self._send_handshake(
                {
                    "msg": "certificate",
                    "subject": self.certificate.subject,
                    "public_key": b64url_encode(self.certificate.public_key),
                },
                {"msg": "finished", "mac": self._finished_mac(self._write_key)},
            )
        elif kind == "certificate" and self.role == "server":
            if self.remote_public_key is not None:
                return  # duplicate client flight
            self.remote_public_key = self._verify_certificate(message)
            self._derive_keys()
        elif kind == "finished":
            if self._read_key is None:
                return  # arrived before key derivation; peer will retransmit
            expected = hmac.new(
                self._read_key, b"finished" + self._transcript(), hashlib.sha256
            ).digest()[:16]
            if b64url_decode(message["mac"]) != expected:
                raise DtlsHandshakeError("finished MAC verification failed")
            if self.role == "server":
                assert self._write_key is not None
                self._send_handshake({"msg": "finished", "mac": self._finished_mac(self._write_key)})
            self._establish()
        # Duplicate/replayed flights for the wrong role are ignored, which
        # is what makes retransmission safe.

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        self._last_flight = []
        if self.on_established is not None:
            self.on_established()

    # -- application data -----------------------------------------------------

    def send_application(self, payload: bytes) -> None:
        """Send application."""
        if not self.established or self._write_key is None:
            raise DtlsRecordError("cannot send application data before handshake completes")
        seq = self._next_seq()
        ciphertext = _xor(payload, _keystream(self._write_key, seq, len(payload)))
        mac = hmac.new(self._write_key, struct.pack("!Q", seq) + ciphertext, hashlib.sha256).digest()[
            :_MAC_LEN
        ]
        self.records_sent += 1
        self._send_raw(_encode_record(CONTENT_APPDATA, 1, seq, ciphertext + mac))

    def _handle_appdata(self, seq: int, payload: bytes) -> None:
        if not self.established or self._read_key is None:
            return  # app data racing the final flight; sender will retransmit
        if len(payload) < _MAC_LEN:
            self._fail(DtlsRecordError("application record too short"))
            return
        ciphertext, mac = payload[:-_MAC_LEN], payload[-_MAC_LEN:]
        expected = hmac.new(
            self._read_key, struct.pack("!Q", seq) + ciphertext, hashlib.sha256
        ).digest()[:_MAC_LEN]
        if not hmac.compare_digest(mac, expected):
            self.auth_failures += 1
            if self.on_error is not None:
                self.on_error(DtlsRecordError("record MAC verification failed"))
            return
        plaintext = _xor(ciphertext, _keystream(self._read_key, seq, len(ciphertext)))
        if self.on_data is not None:
            self.on_data(plaintext)
