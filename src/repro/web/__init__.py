"""The web substrate: pages, websites, apps, a headless browser, a corpus.

The measurement half of the paper runs against the public web; this
package provides its synthetic stand-in. :class:`~repro.web.page.Website`
objects serve HTML whose script tags and inline JavaScript carry the
same signatures real PDN customers exhibit; :class:`~repro.web.apk.AndroidApp`
models APKs with namespaces and manifest metadata;
:class:`~repro.web.browser.Browser` loads pages, runs the PDN SDK under
each customer's load conditions, and accounts resources; and
:mod:`repro.web.corpus` builds the ranked, categorised internet-scale
corpus — seeded with the paper's confirmed customers as ground truth —
that the detector (:mod:`repro.detection`) is evaluated against.
"""

from repro.web.page import LoadCondition, PdnEmbed, WebPage, Website
from repro.web.apk import AndroidApp, ApkVersion
from repro.web.browser import Browser, PageSession

__all__ = [
    "LoadCondition",
    "PdnEmbed",
    "WebPage",
    "Website",
    "AndroidApp",
    "ApkVersion",
    "Browser",
    "PageSession",
]
