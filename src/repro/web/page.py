"""Web pages and websites with PDN embeds.

A :class:`Website` is an HTTP server whose pages carry exactly the
artifacts the paper's detector keys on:

- an external script tag matching the provider's SDK URL pattern
  (``api.peer5.com/peer5.js?id=...``);
- an inline API key — in the clear for most customers, or obfuscated
  (``_0x101f38[...]``) for the ones whose keys the paper could not
  extract by regex;
- for private services, inline WebRTC code referencing the platform's
  own signaling domain (Table IV);
- load *conditions* (geolocation gates, subscription walls) that explain
  why dynamic analysis confirms only a subset of potential customers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.streaming.http import HttpRequest, HttpResponse


class LoadCondition(enum.Enum):
    """Preconditions a customer sets before loading the PDN service."""

    ALWAYS = "always"
    GEO = "geo"  # only load for viewers in a given country (e.g. Douyu: CN)
    SUBSCRIPTION = "subscription"  # behind a paywall; dynamic analysis can't reach it
    DEEP_SUBPAGE = "deep_subpage"  # only on pages deeper than the crawl limit


@dataclass
class PdnEmbed:
    """The PDN integration carried by a page."""

    provider: object  # PdnProvider
    credential: str  # static API key (public) or customer id (private)
    video_url: str
    obfuscated: bool = False
    load_condition: LoadCondition = LoadCondition.ALWAYS
    geo_country: str = "CN"
    relay_only: bool = False  # xhamsterlive/stripchat-style TURN relaying
    token_issuer: object | None = None  # §V-A defense: TokenIssuer at the backend
    # Microsoft-eCDN-style integrations deliver the credential through
    # enterprise configuration; nothing key-like ever reaches the page.
    credential_in_page: bool = True

    @property
    def profile(self):
        """Profile."""
        return self.provider.profile

    def loads_for(self, viewer_country: str, subscribed: bool = False) -> bool:
        """Would this page actually start the PDN for this viewer?"""
        if self.load_condition is LoadCondition.ALWAYS:
            return True
        if self.load_condition is LoadCondition.GEO:
            return viewer_country == self.geo_country
        if self.load_condition is LoadCondition.SUBSCRIPTION:
            return subscribed
        return False  # DEEP_SUBPAGE embeds only live on deep pages


@dataclass
class WebPage:
    """One page of a website."""

    path: str
    title: str = ""
    has_video: bool = False
    links: list[str] = field(default_factory=list)  # same-site subpage paths
    embed: PdnEmbed | None = None
    video_url: str | None = None  # for plain (no-PDN) playback
    extra_html: str = ""

    def render(self, domain: str) -> str:
        """The HTML the server returns (what the crawler fingerprints)."""
        parts = [
            "<!DOCTYPE html>",
            f"<html><head><title>{self.title or domain}</title></head><body>",
        ]
        if self.has_video:
            parts.append('<video id="player" controls></video>')
        if self.embed is not None:
            parts.append(self._render_embed())
        for link in self.links:
            parts.append(f'<a href="{link}">{link}</a>')
        if self.extra_html:
            parts.append(self.extra_html)
        parts.append("</body></html>")
        return "\n".join(parts)

    def _render_embed(self) -> str:
        embed = self.embed
        assert embed is not None
        profile = embed.profile
        if not embed.credential_in_page:
            # The SDK loads from a fixed URL; the tenant credential comes
            # from enterprise configuration, never from page source.
            sdk_base = profile.sdk_url_pattern.format(key="").rstrip("=/")
            return (
                f'<script src="{sdk_base}"></script>\n'
                f"<script>startPlayer('{embed.video_url}');</script>"
            )
        if profile.is_private:
            # Private services: first-party player code invoking WebRTC
            # against the platform's own signaling domain.
            return (
                "<script>\n"
                "var pc = new RTCPeerConnection({iceServers:[]});\n"
                f"var signal = new WebSocket('wss://{profile.signaling_host}/ws');\n"
                f"player.load('{embed.video_url}');\n"
                "</script>"
            )
        if embed.obfuscated:
            # The key never appears contiguously: it is chunked, reversed,
            # and the SDK script is loaded dynamically — the URL-pattern
            # signature still matches, but regex key extraction fails
            # (the paper's `_0x101f38[_0x2c4aeb(0x234)]` cases).
            chunks = "','".join(
                reversed([embed.credential[i : i + 4] for i in range(0, len(embed.credential), 4)])
            )
            sdk_base = profile.sdk_url_pattern.format(key="")
            return (
                "<script>\n"
                f"var _0x101f38=['{chunks}'];\n"
                "var _0x2c4aeb=function(i){return _0x101f38.slice().reverse().join('');};\n"
                "var _s=document.createElement('script');\n"
                f"_s.src='{sdk_base}'+_0x2c4aeb(0x234);\n"
                "document.head.appendChild(_s);\n"
                f"startPlayer('{embed.video_url}');\n"
                "</script>"
            )
        sdk_url = profile.sdk_url(embed.credential)
        return (
            f'<script src="{sdk_url}"></script>\n'
            f"<script>var pdnApiKey = '{embed.credential}';\n"
            f"startPlayer('{embed.video_url}');</script>"
        )


@dataclass
class Website:
    """A whole site: domain, ranking metadata, and its pages."""

    domain: str
    rank: int = 10**9
    category: str = "general"
    monthly_visits: int | None = None
    pages: dict[str, WebPage] = field(default_factory=dict)

    def add_page(self, page: WebPage) -> WebPage:
        """Add page."""
        self.pages[page.path] = page
        return page

    def page(self, path: str) -> WebPage | None:
        """Page."""
        return self.pages.get(path if path.startswith("/") else "/" + path)

    @property
    def landing(self) -> WebPage | None:
        """Landing."""
        return self.pages.get("/")

    def pdn_pages(self) -> list[WebPage]:
        """Pdn pages."""
        return [p for p in self.pages.values() if p.embed is not None]

    def video_url_for(self, path: str = "/") -> str | None:
        """Video url for."""
        page = self.page(path)
        return page.embed.video_url if page and page.embed else None

    # -- HTTP -------------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        page = self.page(request.path)
        if page is None:
            return HttpResponse(404, b"not found")
        return HttpResponse(
            200, page.render(self.domain).encode(), {"content-type": "text/html"}
        )

    def issue_viewer_credential(self, page: WebPage) -> str | None:
        """What a real viewer's browser ends up holding.

        Public providers: the static API key straight from the page.
        Private services: the site backend mints a session token on page
        load (bound to the video URL iff the platform does that).
        """
        if page.embed is None:
            return None
        if page.embed.token_issuer is not None:
            # §V-A defense: the backend mints a fresh disposable token
            # bound to this page's video manifests.
            return page.embed.token_issuer.issue([page.embed.video_url])
        if page.embed.profile.is_private:
            return page.embed.provider.issue_session_token(
                self.domain, page.embed.video_url
            )
        return page.embed.credential
