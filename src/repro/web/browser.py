"""A headless browser: page loading, SDK execution, resource accounting.

The analyzer's peer containers each run "a web driver and a proxy
client" (Fig. 2); :class:`Browser` is that pairing. Opening a video page
mirrors what a real browser does with a PDN customer's HTML:

1. fetch the page (through the proxy, if configured);
2. if a PDN embed is present and its load condition passes for this
   viewer (geolocation gates, paywalls), fetch the SDK JavaScript and
   start a :class:`~repro.pdn.sdk.PdnClient` — with *no consent dialog*,
   because no studied customer shows one (§IV-D);
3. attach a :class:`~repro.streaming.player.VideoPlayer` to whichever
   loader applies (hybrid SDK, or plain CDN when there is no PDN).

The browser exposes cumulative activity counters that the resource
monitor converts to CPU/memory figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment import Environment
from repro.net.nat import NatType
from repro.net.network import Host
from repro.pdn.sdk import PdnClient
from repro.privacy.resources import ActivitySnapshot
from repro.streaming.http import parse_url
from repro.streaming.player import CdnLoader, VideoPlayer
from repro.web.apk import AndroidApp
from repro.web.page import Website


@dataclass
class PageSession:
    """One open tab: the page plus whatever it spawned."""

    url: str
    html: str = ""
    status: int = 0
    site: Website | None = None
    sdk: PdnClient | None = None
    player: VideoPlayer | None = None
    pdn_loaded: bool = False
    skip_reason: str = ""
    consent_requested: bool = False  # stays False: the §IV-D finding

    def close(self) -> None:
        """Close and release resources."""
        if self.player is not None:
            self.player.stop()
        if self.sdk is not None:
            self.sdk.stop()


class Browser:
    """A viewer's browser (or the analyzer's web driver)."""

    def __init__(
        self,
        env: Environment,
        name: str | None = None,
        country: str = "US",
        nat_type: NatType = NatType.FULL_CONE,
        proxy=None,
        connection_type: str = "wifi",
        host: Host | None = None,
        integrity=None,
        relay_only: bool = False,
    ) -> None:
        self.env = env
        self.name = name or env.ids.next("browser")
        self.country = country
        self.host = host or env.add_viewer_host(self.name, country, nat_type)
        self.http = env.http_client(self.host, proxy=proxy)
        self.proxy = proxy
        self.connection_type = connection_type
        self.integrity = integrity
        self.relay_only = relay_only
        # What this viewer would answer if a consent dialog appeared
        # (§V-C mitigation; only ~30% of real viewers opt in [81]).
        self.grant_pdn_consent = True
        self.sessions: list[PageSession] = []
        self._closed_sdk_stats: list = []

    # -- navigation -----------------------------------------------------------

    def open(
        self,
        url: str,
        watch: bool = True,
        subscribed: bool = False,
        buffer_target: int = 3,
        max_segments: int | None = None,
    ) -> PageSession:
        """Load a page; start the PDN SDK and player if the page has video."""
        session = PageSession(url=url)
        self.sessions.append(session)
        response = self.http.get(url, headers={"User-Agent": "repro-browser"})
        session.status = response.status
        if not response.ok:
            session.skip_reason = f"http {response.status}"
            return session
        session.html = response.body.decode(errors="replace")
        _scheme, host, path = parse_url(url)
        site = self.env.urlspace.resolve(host)
        if not isinstance(site, Website):
            session.skip_reason = "not a modeled website"
            return session
        session.site = site
        page = site.page(path)
        if page is None or not page.has_video or not watch:
            session.skip_reason = "no video on page" if page else "page missing"
            return session

        loader = None
        video_url = page.embed.video_url if page.embed else page.video_url
        if page.embed is not None:
            if page.embed.loads_for(self.country, subscribed):
                loader = self._boot_sdk(session, site, page)
            else:
                session.skip_reason = f"load condition {page.embed.load_condition.value} not met"
        if video_url is None:
            return session
        if loader is None:
            loader = CdnLoader(self.http)
        session.player = VideoPlayer(
            self.env.loop,
            loader,
            video_url,
            buffer_target=buffer_target,
            max_segments=max_segments,
            name=self.name,
        )
        session.player.start()
        return session

    def _boot_sdk(self, session: PageSession, site: Website, page) -> PdnClient | None:
        embed = page.embed
        profile = embed.profile
        if not profile.is_private:
            # The external SDK script fetch — observable, fingerprinted traffic.
            self.http.get(profile.sdk_url(embed.credential))
        credential = site.issue_viewer_credential(page)
        if credential is None:
            session.skip_reason = "no credential issued"
            return None
        customer_id = embed.credential if profile.is_private else None
        key = embed.provider.authenticator.lookup(embed.credential)
        policy = embed.provider.customer_policy(
            key.customer_id if key is not None else (customer_id or site.domain)
        )
        if policy.show_consent_dialog:
            session.consent_requested = True
            if not self.grant_pdn_consent:
                session.skip_reason = "viewer declined PDN consent"
                return None
        sdk = PdnClient(
            loop=self.env.loop,
            rand=self.env.rand,
            host=self.host,
            http=self.http,
            provider=embed.provider,
            credential=credential,
            page_origin=f"https://{site.domain}",
            video_url=embed.video_url,
            rtc_config=self.env.rtc_config(relay_only=self.relay_only or embed.relay_only),
            policy=policy,
            connection_type=self.connection_type,
            name=self.name,
            integrity=self.integrity,
        )
        session.sdk = sdk
        session.pdn_loaded = sdk.start()
        if not session.pdn_loaded:
            session.skip_reason = f"pdn join rejected: {sdk.join_error}"
            return None
        return sdk

    def run_app(self, app: AndroidApp, subscribed: bool = False) -> PageSession:
        """Launch an Android app (its latest APK) the way the analyzer does."""
        session = PageSession(url=f"app://{app.package_name}")
        self.sessions.append(session)
        apk = app.latest
        if apk is None or apk.embed is None:
            session.skip_reason = "apk has no pdn integration"
            return session
        embed = apk.embed
        if not embed.loads_for(self.country, subscribed):
            session.skip_reason = f"load condition {embed.load_condition.value} not met"
            return session
        sdk = PdnClient(
            loop=self.env.loop,
            rand=self.env.rand,
            host=self.host,
            http=self.http,
            provider=embed.provider,
            credential=embed.credential,
            page_origin=f"app://{app.package_name}",
            video_url=embed.video_url,
            rtc_config=self.env.rtc_config(relay_only=self.relay_only),
            policy=embed.provider.customer_policy(app.package_name),
            connection_type=self.connection_type,
            name=self.name,
            integrity=self.integrity,
        )
        session.sdk = sdk
        session.pdn_loaded = sdk.start()
        if not session.pdn_loaded:
            session.skip_reason = f"pdn join rejected: {sdk.join_error}"
            return session
        session.player = VideoPlayer(self.env.loop, sdk, embed.video_url, name=self.name)
        session.player.start()
        return session

    def close(self) -> None:
        """Close and release resources."""
        for session in self.sessions:
            if session.sdk is not None:
                self._closed_sdk_stats.append(session.sdk.stats)
            session.close()
        self.sessions = []

    # -- resource accounting -------------------------------------------------------

    def resource_activity(self) -> ActivitySnapshot:
        """Resource activity."""
        playing = any(
            s.player is not None and not s.player.finished and s.player.started
            for s in self.sessions
        )
        pdn_active = any(s.pdn_loaded for s in self.sessions)
        integrity_active = any(
            s.sdk is not None and s.sdk.integrity is not None and s.pdn_loaded
            for s in self.sessions
        )
        stats = [s.sdk.stats for s in self.sessions if s.sdk is not None]
        stats += self._closed_sdk_stats
        p2p_down = sum(st.bytes_p2p_down for st in stats)
        p2p_up = sum(st.bytes_p2p_up for st in stats)
        hash_bytes = sum(st.hash_bytes for st in stats)
        cdn_bytes = sum(st.bytes_cdn for st in stats)
        cache_bytes = sum(
            s.sdk.cache_bytes() for s in self.sessions if s.sdk is not None
        )
        if not stats:
            # no PDN: all HTTP download counts as CDN traffic
            cdn_bytes = self.http.bytes_downloaded
        return ActivitySnapshot(
            playing=playing,
            pdn_active=pdn_active,
            integrity_active=integrity_active,
            bytes_cdn=cdn_bytes,
            bytes_p2p_down=p2p_down,
            bytes_p2p_up=p2p_up,
            hash_bytes=hash_bytes,
            cache_bytes=cache_bytes,
            net_in=self.http.bytes_downloaded + p2p_down,
            net_out=self.http.bytes_uploaded + p2p_up,
        )
