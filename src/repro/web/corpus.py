"""The synthetic internet corpus, seeded with the paper's ground truth.

The corpus materialises every site and app the paper's pipeline acted
on, embedded in realistic noise:

- the 17 confirmed PDN websites of Table II and 18 confirmed apps of
  Table III (one of the paper's 18 rows is a duplicate of
  ``vn.com.vega.clipvn``; we materialise the 18th as the placeholder
  package ``vn.com.vega.clipvn2`` so per-provider counts match Table I);
- the remaining *potential* customers (134 sites / 38 apps in total)
  whose PDN never triggers under dynamic analysis — geolocation gates,
  subscription walls;
- the 10 confirmed private PDN services of Table IV, the 2 adult
  TURN-relaying platforms, 3 WebRTC-fingerprinting sites, and 42 generic
  WebRTC sites that never produce PDN traffic;
- API keys distributed so that exactly 44 are regex-extractable, 40 of
  those valid, and 11 of the valid Peer5 keys lack a domain allowlist —
  the §IV-B in-the-wild numbers;
- noise: video sites without any PDN, and non-video sites.

Counts that the paper reports but that need no per-site behaviour (the
Tranco 300K crawl, the 68,713 video-related domains, the 1.5M sampled
apps) are carried as *virtual* totals on the corpus object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.environment import Environment
from repro.pdn.policy import CellularPolicy, ClientPolicy
from repro.pdn.provider import PEER5, STREAMROOT, VIBLAST, PdnProvider, private_profile
from repro.streaming.cdn import CdnEdge, OriginServer, vod_playlist_url
from repro.streaming.video import make_video
from repro.web.apk import AndroidApp, build_pdn_apk, build_plain_apk
from repro.web.page import LoadCondition, PdnEmbed, WebPage, Website

# --------------------------------------------------------------------------
# Ground-truth data straight from the paper's tables.
# --------------------------------------------------------------------------

# Table II: confirmed PDN websites (domain, provider, monthly visits).
CONFIRMED_WEBSITES: list[tuple[str, str, int | None]] = [
    ("rt.com", "streamroot", 117_000_000),
    ("clarin.com", "peer5", 69_000_000),
    ("rtve.es", "peer5", 35_000_000),
    ("jn.pt", "peer5", 12_000_000),
    ("ojogo.pt", "peer5", 8_000_000),
    ("dn.pt", "peer5", 6_000_000),
    ("servustv.com", "peer5", 4_000_000),
    ("www.popcornflix.com", "peer5", 1_000_000),
    ("tsf.pt", "peer5", 1_000_000),
    ("dinheirovivo.pt", "peer5", 1_000_000),
    ("www.sliver.tv", "peer5", None),
    ("hdo.tv", "peer5", None),
    ("www.souvenirsfromearth.tv", "peer5", None),
    ("www.severestudios.com", "peer5", None),
    ("www.performancevetsupply.com", "peer5", None),
    ("www.schoolfordesign.net", "peer5", None),
    ("9uu.com", "peer5", None),
]

# Table III: confirmed PDN apps (package, provider, Google Play downloads).
CONFIRMED_APPS: list[tuple[str, str, int | None]] = [
    ("iflix.play", "streamroot", 50_000_000),
    ("fr.francetv.pluzz", "streamroot", 10_000_000),
    ("com.nousguide.android.rbtv", "peer5", 10_000_000),
    ("com.portonics.mygp", "peer5", 10_000_000),
    ("mivo.tv", "peer5", 10_000_000),
    ("com.bongo.bioscope", "peer5", 5_000_000),
    ("tv.fubo.mobile", "peer5", 5_000_000),
    ("com.rt.mobile.english", "streamroot", 1_000_000),
    ("vn.com.vega.clipvn", "peer5", 1_000_000),
    ("com.flipps.fitetv", "peer5", 1_000_000),
    # Table III prints vn.com.vega.clipvn twice; placeholder keeps counts.
    ("vn.com.vega.clipvn2", "peer5", 1_000_000),
    ("com.arenacloudtv.android", "peer5", 500_000),
    ("com.televisions.burma", "peer5", 50_000),
    ("com.totalaccesstv.live", "peer5", None),
    ("dev.hw.app.tgnd", "peer5", None),
    ("tv.almighty.apk", "peer5", None),
    ("com.rvcomx.brpro", "peer5", None),
    ("com.lts.cricingif", "peer5", None),
]

# §IV-D: the three apps allowing cellular upload AND download.
CELLULAR_FULL_APPS = {"com.bongo.bioscope", "com.portonics.mygp", "com.arenacloudtv.android"}

# Table IV: confirmed private PDN services (domain, signaling host, visits).
PRIVATE_SERVICES: list[tuple[str, str, int]] = [
    ("bilibili.com", "hw-v2-web-player-tracker.biliapi.net", 911_000_000),
    ("ok.ru", "vm.mycdn.me", 662_000_000),
    ("douyu.com", "wsproxy.douyu.com", 95_000_000),
    ("v.qq.com", "webrtcpunch.video.qq.com", 92_000_000),
    ("iqiyi.com", "broker-qx-ws2.iqiyi.com", 82_000_000),
    ("huya.com", "wsapi.huya.com", 61_000_000),
    ("youku.com", "ws.mmstat.com", 60_000_000),
    ("tudou.com", "ws.mmstat.com", 44_000_000),
    ("mgtv.com", "signal.api.mgtv.com", 42_000_000),
    ("younow.com", "signaling.younow-prod.video.propsproject.com", 1_000_000),
]

# Private services whose tokens are NOT bound to the video source
# (Mango TV confirmed free-ridable; Tencent Video token unbound).
PRIVATE_UNBOUND_TOKENS = {"mgtv.com", "v.qq.com"}

ADULT_RELAY_SITES = ["xhamsterlive.com", "stripchat.com"]
WEBRTC_TRACKING_SITES = ["tracker-cdn.example-ads.com", "fingerprintjs.example.net", "metrics.example-media.tv"]

# Potential-but-unconfirmed split per provider (Table I: potential 60/53/21
# websites minus confirmed 16/1/0).
POTENTIAL_UNCONFIRMED_SITES = {"peer5": 44, "streamroot": 52, "viblast": 21}
# Apps: potential 31/6/1 minus confirmed 15/3/0.
POTENTIAL_UNCONFIRMED_APPS = {"peer5": 16, "streamroot": 3, "viblast": 1}

# APK version budgets (Table I): pdn-signature APKs for confirmed apps /
# for potential-only apps, per provider.
APK_BUDGETS = {
    "peer5": {"confirmed_pdn": 199, "potential_pdn": 349},
    "streamroot": {"confirmed_pdn": 53, "potential_pdn": 15},
    "viblast": {"confirmed_pdn": 0, "potential_pdn": 11},
}

# §IV-B key extraction ground truth. Keys are extractable unless the
# customer obfuscates them; of the 44 extractable, 4 are expired; of the
# 36 valid Peer5 keys, 11 lack a domain allowlist.
EXTRACTABLE_KEYS = {"peer5": 38, "streamroot": 2, "viblast": 4}
EXPIRED_EXTRACTABLE = {"peer5": 2, "streamroot": 1, "viblast": 1}
PEER5_NO_ALLOWLIST_VALID = 11


@dataclass
class CorpusConfig:
    """Scale knobs for the synthetic internet."""

    virtual_total_domains: int = 300_000
    virtual_video_related: int = 68_713
    virtual_source_search_hits: int = 44
    virtual_sampled_apps: int = 1_500_000
    generic_webrtc_total: int = 385  # sites matching generic signatures
    generic_webrtc_top10k: int = 57  # of which in the top 10K (dyn. tested)
    untriggerable_generic_top10k: int = 42
    noise_video_sites: int = 80
    noise_nonvideo_sites: int = 40
    noise_apps: int = 25
    video_segments: int = 8
    segment_seconds: float = 4.0
    segment_bytes: int = 60_000


def quick_corpus_config() -> CorpusConfig:
    """A scaled-down corpus for smoke runs: ground truth intact, noise cut.

    The confirmed customers (and hence every paper count) are all still
    present; only the synthetic noise population shrinks, so quick runs
    stay representative while finishing in about a second.
    """
    return CorpusConfig(noise_video_sites=8, noise_nonvideo_sites=4, noise_apps=4)


@dataclass
class CustomerRecord:
    """Ground truth about one PDN customer integration."""

    name: str  # domain or package
    provider: str
    kind: str  # "website" | "app" | "private"
    confirmed_expected: bool
    api_key: str | None = None
    key_extractable: bool = False
    key_valid: bool = True
    key_has_allowlist: bool = True
    monthly_visits: int | None = None
    downloads: int | None = None


@dataclass
class Corpus:
    """The materialised internet plus its ground truth."""

    env: Environment
    config: CorpusConfig
    origin: OriginServer
    cdn: CdnEdge
    providers: dict[str, PdnProvider] = field(default_factory=dict)
    private_providers: dict[str, PdnProvider] = field(default_factory=dict)
    websites: list[Website] = field(default_factory=list)
    apps: list[AndroidApp] = field(default_factory=list)
    records: list[CustomerRecord] = field(default_factory=list)
    top10k_webrtc_domains: list[str] = field(default_factory=list)

    def website(self, domain: str) -> Website | None:
        """Website."""
        for site in self.websites:
            if site.domain == domain:
                return site
        return None

    def app(self, package: str) -> AndroidApp | None:
        """App."""
        for app in self.apps:
            if app.package_name == package:
                return app
        return None

    def record_for(self, name: str) -> CustomerRecord | None:
        """Record for."""
        for record in self.records:
            if record.name == name:
                return record
        return None

    def expected_confirmed(self, kind: str) -> set[str]:
        """Expected confirmed."""
        return {r.name for r in self.records if r.kind == kind and r.confirmed_expected}

    def extractable_keys(self) -> list[CustomerRecord]:
        """Extractable keys."""
        return [r for r in self.records if r.key_extractable and r.api_key]


def build_corpus(env: Environment, config: CorpusConfig | None = None) -> Corpus:
    """Materialise the synthetic internet into ``env``'s URL space."""
    config = config or CorpusConfig()
    origin = OriginServer(env.loop, hostname="origin.corpus.net")
    cdn = CdnEdge(origin, hostname="cdn.corpus.net")
    env.urlspace.register(origin.hostname, origin)
    env.urlspace.register(cdn.hostname, cdn)
    corpus = Corpus(env, config, origin, cdn)

    for profile in (PEER5, STREAMROOT, VIBLAST):
        provider = PdnProvider(env.loop, env.rand, profile)
        provider.install(env.urlspace)
        corpus.providers[profile.name] = provider

    _add_shared_video(corpus)
    key_plan = _KeyPlan()
    _add_confirmed_websites(corpus, key_plan)
    _add_potential_websites(corpus, key_plan)
    _add_apps(corpus, key_plan)
    _add_private_services(corpus)
    _add_adult_relay_sites(corpus)
    _add_tracking_and_generic_sites(corpus)
    _add_noise(corpus)
    key_plan.verify()
    env.rand.fork("corpus-shuffle")  # reserved stream, keeps older seeds stable
    return corpus


# --------------------------------------------------------------------------
# Internals
# --------------------------------------------------------------------------


class _KeyPlan:
    """Allocates extractable/expired/no-allowlist key slots per provider."""

    def __init__(self) -> None:
        self.extractable_left = dict(EXTRACTABLE_KEYS)
        self.expired_left = dict(EXPIRED_EXTRACTABLE)
        self.no_allowlist_left = PEER5_NO_ALLOWLIST_VALID

    def take_extractable(self, provider: str) -> bool:
        """Take extractable."""
        if self.extractable_left.get(provider, 0) > 0:
            self.extractable_left[provider] -= 1
            return True
        return False

    def take_expired(self, provider: str) -> bool:
        """Take expired."""
        if self.expired_left.get(provider, 0) > 0:
            self.expired_left[provider] -= 1
            return True
        return False

    def take_no_allowlist(self, provider: str) -> bool:
        """Take no allowlist."""
        if provider == "peer5" and self.no_allowlist_left > 0:
            self.no_allowlist_left -= 1
            return True
        return False

    def verify(self) -> None:
        """Return True if the signature checks out."""
        leftover = (
            sum(self.extractable_left.values())
            + sum(self.expired_left.values())
            + self.no_allowlist_left
        )
        if leftover:
            raise RuntimeError(
                f"key plan not exhausted: {self.extractable_left} {self.expired_left} "
                f"no-allowlist={self.no_allowlist_left}"
            )


def _add_shared_video(corpus: Corpus) -> None:
    config = corpus.config
    video = make_video(
        "corpus-shared",
        num_segments=config.video_segments,
        segment_duration=config.segment_seconds,
        segment_size=config.segment_bytes,
    )
    corpus.origin.add_vod(video)


def _video_for(corpus: Corpus, video_id: str) -> str:
    config = corpus.config
    video = make_video(
        video_id,
        num_segments=config.video_segments,
        segment_duration=config.segment_seconds,
        segment_size=config.segment_bytes,
    )
    corpus.origin.add_vod(video)
    return vod_playlist_url(corpus.cdn.hostname, video_id)


def _shared_video_url(corpus: Corpus) -> str:
    return vod_playlist_url(corpus.cdn.hostname, "corpus-shared")


def _add_confirmed_websites(corpus: Corpus, key_plan: _KeyPlan) -> None:
    for rank_offset, (domain, provider_name, visits) in enumerate(CONFIRMED_WEBSITES):
        provider = corpus.providers[provider_name]
        # Confirmed sites never use expired keys (they join successfully);
        # a handful of them are among the 11 Peer5 no-allowlist customers.
        no_allowlist = provider_name == "peer5" and rank_offset % 3 == 0 and key_plan.take_no_allowlist(provider_name)
        domains = None if no_allowlist else {domain}
        key = provider.signup_customer(domain, domains, ClientPolicy())
        extractable = key_plan.take_extractable(provider_name)
        video_url = _video_for(corpus, f"vod-{domain.replace('.', '-')}")
        site = Website(domain, rank=200 + rank_offset * 37, category="tv", monthly_visits=visits)
        embed = PdnEmbed(provider, key.key, video_url, obfuscated=not extractable)
        site.add_page(WebPage("/", f"{domain} home", has_video=True, embed=embed,
                              links=["/live", "/about"]))
        site.add_page(WebPage("/live", "live", has_video=True, embed=embed))
        site.add_page(WebPage("/about", "about"))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
        corpus.records.append(
            CustomerRecord(
                name=domain,
                provider=provider_name,
                kind="website",
                confirmed_expected=True,
                api_key=key.key,
                key_extractable=extractable,
                key_valid=True,
                key_has_allowlist=key.has_allowlist,
                monthly_visits=visits,
            )
        )


def _add_potential_websites(corpus: Corpus, key_plan: _KeyPlan) -> None:
    conditions = [
        (LoadCondition.GEO, "CN"),
        (LoadCondition.GEO, "RU"),
        (LoadCondition.SUBSCRIPTION, ""),
    ]
    counter = 0
    for provider_name, count in POTENTIAL_UNCONFIRMED_SITES.items():
        provider = corpus.providers[provider_name]
        for i in range(count):
            counter += 1
            domain = f"{provider_name}-potential-{i}.example.org"
            condition, geo = conditions[counter % len(conditions)]
            extractable = key_plan.take_extractable(provider_name)
            expired = extractable and key_plan.take_expired(provider_name)
            # Only valid, extracted keys can show up in the §IV-B 11/36
            # cross-domain statistic, so no-allowlist slots go to those.
            no_allowlist = extractable and not expired and key_plan.take_no_allowlist(provider_name)
            domains = None if no_allowlist else {domain}
            key = provider.signup_customer(domain, domains, ClientPolicy())
            if expired:
                provider.authenticator.revoke_key(key.key)
            valid = not expired
            embed = PdnEmbed(
                provider,
                key.key,
                _shared_video_url(corpus),
                obfuscated=not extractable,
                load_condition=condition,
                geo_country=geo or "CN",
            )
            site = Website(domain, rank=2_000 + counter * 71, category="video")
            # Some potential customers carry the embed on a depth-2 page.
            if counter % 4 == 0:
                site.add_page(WebPage("/", "home", has_video=True, links=["/videos"]))
                site.add_page(WebPage("/videos", "videos", has_video=True, links=["/videos/live"]))
                site.add_page(WebPage("/videos/live", "live", has_video=True, embed=embed))
            else:
                site.add_page(WebPage("/", "home", has_video=True, embed=embed))
            corpus.env.urlspace.register(domain, site)
            corpus.websites.append(site)
            corpus.records.append(
                CustomerRecord(
                    name=domain,
                    provider=provider_name,
                    kind="website",
                    confirmed_expected=False,
                    api_key=key.key,
                    key_extractable=extractable,
                    key_valid=valid,
                    key_has_allowlist=key.has_allowlist,
                )
            )


def _apk_spread(total: int, parts: int) -> list[int]:
    """Split ``total`` APKs across ``parts`` apps, deterministic."""
    if parts == 0:
        return []
    base = total // parts
    out = [base] * parts
    for i in range(total - base * parts):
        out[i] += 1
    return out


def _add_apps(corpus: Corpus, key_plan: _KeyPlan) -> None:
    confirmed_by_provider: dict[str, list[tuple[str, int | None]]] = {}
    for package, provider_name, downloads in CONFIRMED_APPS:
        confirmed_by_provider.setdefault(provider_name, []).append((package, downloads))

    for provider_name, budget in APK_BUDGETS.items():
        provider = corpus.providers[provider_name]
        confirmed = confirmed_by_provider.get(provider_name, [])
        spreads = _apk_spread(budget["confirmed_pdn"], len(confirmed))
        for (package, downloads), pdn_versions in zip(confirmed, spreads):
            cellular = (
                CellularPolicy.FULL if package in CELLULAR_FULL_APPS else CellularPolicy.LEECH
            )
            key = provider.signup_customer(package, {package}, ClientPolicy(cellular=cellular))
            video_url = _video_for(corpus, f"app-{package.replace('.', '-')}")
            embed = PdnEmbed(provider, key.key, video_url)
            app = AndroidApp(package, downloads=downloads)
            for v in range(max(1, pdn_versions)):
                app.add_version(build_pdn_apk(100 + v, embed))
            app.add_version(build_plain_apk(50))  # a pre-integration version
            corpus.apps.append(app)
            corpus.records.append(
                CustomerRecord(
                    name=package,
                    provider=provider_name,
                    kind="app",
                    confirmed_expected=True,
                    api_key=key.key,
                    key_extractable=False,  # app keys ship obfuscated
                    key_valid=True,
                    key_has_allowlist=True,
                    downloads=downloads,
                )
            )
        potential_count = POTENTIAL_UNCONFIRMED_APPS.get(provider_name, 0)
        spreads = _apk_spread(budget["potential_pdn"], potential_count)
        for i, pdn_versions in enumerate(spreads):
            package = f"com.{provider_name}.potential{i}"
            key = provider.signup_customer(package, {package}, ClientPolicy())
            embed = PdnEmbed(
                provider,
                key.key,
                _shared_video_url(corpus),
                load_condition=LoadCondition.GEO,
                geo_country="CN",
            )
            app = AndroidApp(package, downloads=None)
            for v in range(max(1, pdn_versions)):
                app.add_version(build_pdn_apk(100 + v, embed))
            corpus.apps.append(app)
            corpus.records.append(
                CustomerRecord(
                    name=package,
                    provider=provider_name,
                    kind="app",
                    confirmed_expected=False,
                    api_key=key.key,
                    key_extractable=False,
                    key_valid=True,
                    key_has_allowlist=True,
                )
            )


def _add_private_services(corpus: Corpus) -> None:
    by_signaling_host: dict[str, PdnProvider] = {}
    for rank_offset, (domain, signaling_host, visits) in enumerate(PRIVATE_SERVICES):
        if signaling_host in by_signaling_host:
            # youku.com and tudou.com share ws.mmstat.com: one Alibaba
            # signaling service with two customer platforms.
            provider = by_signaling_host[signaling_host]
        else:
            profile = private_profile(
                domain, signaling_host, video_bound_tokens=domain not in PRIVATE_UNBOUND_TOKENS
            )
            provider = PdnProvider(corpus.env.loop, corpus.env.rand, profile)
            provider.install(corpus.env.urlspace)
            by_signaling_host[signaling_host] = provider
        provider.signup_customer(domain, {domain}, ClientPolicy())
        corpus.private_providers[domain] = provider
        video_url = _video_for(corpus, f"private-{domain.replace('.', '-')}")
        provider.register_drm_video(video_url)
        site = Website(domain, rank=10 + rank_offset * 13, category="live", monthly_visits=visits)
        embed = PdnEmbed(provider, domain, video_url)
        site.add_page(WebPage("/", f"{domain}", has_video=True, embed=embed))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
        corpus.top10k_webrtc_domains.append(domain)
        corpus.records.append(
            CustomerRecord(
                name=domain,
                provider=f"private:{domain}",
                kind="private",
                confirmed_expected=True,
                monthly_visits=visits,
            )
        )


def _add_adult_relay_sites(corpus: Corpus) -> None:
    for i, domain in enumerate(ADULT_RELAY_SITES):
        profile = private_profile(domain, f"relay.{domain}")
        provider = PdnProvider(corpus.env.loop, corpus.env.rand, profile)
        provider.install(corpus.env.urlspace)
        provider.signup_customer(domain, {domain}, ClientPolicy())
        corpus.private_providers[domain] = provider
        video_url = _video_for(corpus, f"adult-{i}")
        provider.register_drm_video(video_url)
        site = Website(domain, rank=3_000 + i * 311, category="adult")
        embed = PdnEmbed(provider, domain, video_url, relay_only=True)
        site.add_page(WebPage("/", domain, has_video=True, embed=embed))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
        corpus.top10k_webrtc_domains.append(domain)


def _add_tracking_and_generic_sites(corpus: Corpus) -> None:
    tracking_js = (
        "<script>var pc = new RTCPeerConnection({iceServers:[]});"
        "pc.createDataChannel('probe');</script>"
    )
    for i, domain in enumerate(WEBRTC_TRACKING_SITES):
        site = Website(domain, rank=4_000 + i * 97, category="tv")
        site.add_page(WebPage("/", domain, has_video=True, extra_html=tracking_js))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
        corpus.top10k_webrtc_domains.append(domain)
    generic_js = (
        "<script>var signal = new WebSocket('wss://{host}/live-ws');"
        "var pc = new RTCPeerConnection();</script>"
    )
    config = corpus.config
    for i in range(config.untriggerable_generic_top10k):
        domain = f"generic-webrtc-{i}.example.tv"
        site = Website(domain, rank=5_000 + i * 29, category="video")
        site.add_page(
            WebPage("/", domain, has_video=True, extra_html=generic_js.format(host=domain))
        )
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
        corpus.top10k_webrtc_domains.append(domain)
    # The remaining generic-WebRTC sites rank below the top 10K; the paper
    # never dynamically tested them. A small materialised sample stands in
    # for the tail; the virtual count covers the rest.
    for i in range(10):
        domain = f"longtail-webrtc-{i}.example.net"
        site = Website(domain, rank=40_000 + i * 997, category="video")
        site.add_page(
            WebPage("/", domain, has_video=True, extra_html=generic_js.format(host=domain))
        )
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)


def _add_noise(corpus: Corpus) -> None:
    config = corpus.config
    for i in range(config.noise_video_sites):
        domain = f"video-noise-{i}.example.com"
        site = Website(domain, rank=8_000 + i * 53, category="video")
        site.add_page(WebPage("/", domain, has_video=True, links=["/shows"]))
        site.add_page(WebPage("/shows", "shows", has_video=True))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
    for i in range(config.noise_nonvideo_sites):
        domain = f"plain-noise-{i}.example.com"
        site = Website(domain, rank=12_000 + i * 61, category="general")
        site.add_page(WebPage("/", domain, has_video=False))
        corpus.env.urlspace.register(domain, site)
        corpus.websites.append(site)
    for i in range(config.noise_apps):
        app = AndroidApp(f"com.noise.app{i}", downloads=10_000 * (i + 1))
        for v in range(3):
            app.add_version(build_plain_apk(10 + v))
        corpus.apps.append(app)
