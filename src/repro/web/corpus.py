"""The synthetic internet corpus, seeded with the paper's ground truth.

The corpus materialises every site and app the paper's pipeline acted
on, embedded in realistic noise:

- the 17 confirmed PDN websites of Table II and 18 confirmed apps of
  Table III (one of the paper's 18 rows is a duplicate of
  ``vn.com.vega.clipvn``; we materialise the 18th as the placeholder
  package ``vn.com.vega.clipvn2`` so per-provider counts match Table I);
- the remaining *potential* customers (134 sites / 38 apps in total)
  whose PDN never triggers under dynamic analysis — geolocation gates,
  subscription walls;
- the 10 confirmed private PDN services of Table IV, the 2 adult
  TURN-relaying platforms, 3 WebRTC-fingerprinting sites, and 42 generic
  WebRTC sites that never produce PDN traffic;
- API keys distributed so that exactly 44 are regex-extractable, 40 of
  those valid, and 11 of the valid Peer5 keys lack a domain allowlist —
  the §IV-B in-the-wild numbers;
- noise: video sites without any PDN, and non-video sites.

Counts that the paper reports but that need no per-site behaviour (the
Tranco 300K crawl, the 68,713 video-related domains, the 1.5M sampled
apps) are carried as *virtual* totals on the corpus object.

Since the streaming-detection refactor the corpus is described before it
is built: a :class:`CorpusPlan` lays out every site and app as an
immutable :class:`SiteSpec`/:class:`AppSpec` (ground truth eagerly, the
noise population procedurally by index, so a 3M-domain plan costs no
memory), :class:`CorpusShard` slices the plan into lazy strided
sub-sequences, and :class:`CorpusBuilder` materialises individual specs
into an :class:`~repro.environment.Environment`. Every random artifact a
spec produces (API keys, provider streams) derives from *stateless named
forks* keyed by the item's own identity, never from a shared sequential
stream — so any subset of specs, materialised in any order by any number
of shards, yields bit-identical sites. :func:`build_corpus` is now just
"materialise all shards" in the legacy order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.environment import Environment
from repro.pdn.policy import CellularPolicy, ClientPolicy
from repro.pdn.provider import PEER5, STREAMROOT, VIBLAST, PdnProvider, private_profile
from repro.streaming.cdn import CdnEdge, OriginServer, vod_playlist_url
from repro.streaming.video import make_video
from repro.web.apk import AndroidApp, build_pdn_apk, build_plain_apk
from repro.web.page import LoadCondition, PdnEmbed, WebPage, Website

# --------------------------------------------------------------------------
# Ground-truth data straight from the paper's tables.
# --------------------------------------------------------------------------

# Table II: confirmed PDN websites (domain, provider, monthly visits).
CONFIRMED_WEBSITES: list[tuple[str, str, int | None]] = [
    ("rt.com", "streamroot", 117_000_000),
    ("clarin.com", "peer5", 69_000_000),
    ("rtve.es", "peer5", 35_000_000),
    ("jn.pt", "peer5", 12_000_000),
    ("ojogo.pt", "peer5", 8_000_000),
    ("dn.pt", "peer5", 6_000_000),
    ("servustv.com", "peer5", 4_000_000),
    ("www.popcornflix.com", "peer5", 1_000_000),
    ("tsf.pt", "peer5", 1_000_000),
    ("dinheirovivo.pt", "peer5", 1_000_000),
    ("www.sliver.tv", "peer5", None),
    ("hdo.tv", "peer5", None),
    ("www.souvenirsfromearth.tv", "peer5", None),
    ("www.severestudios.com", "peer5", None),
    ("www.performancevetsupply.com", "peer5", None),
    ("www.schoolfordesign.net", "peer5", None),
    ("9uu.com", "peer5", None),
]

# Table III: confirmed PDN apps (package, provider, Google Play downloads).
CONFIRMED_APPS: list[tuple[str, str, int | None]] = [
    ("iflix.play", "streamroot", 50_000_000),
    ("fr.francetv.pluzz", "streamroot", 10_000_000),
    ("com.nousguide.android.rbtv", "peer5", 10_000_000),
    ("com.portonics.mygp", "peer5", 10_000_000),
    ("mivo.tv", "peer5", 10_000_000),
    ("com.bongo.bioscope", "peer5", 5_000_000),
    ("tv.fubo.mobile", "peer5", 5_000_000),
    ("com.rt.mobile.english", "streamroot", 1_000_000),
    ("vn.com.vega.clipvn", "peer5", 1_000_000),
    ("com.flipps.fitetv", "peer5", 1_000_000),
    # Table III prints vn.com.vega.clipvn twice; placeholder keeps counts.
    ("vn.com.vega.clipvn2", "peer5", 1_000_000),
    ("com.arenacloudtv.android", "peer5", 500_000),
    ("com.televisions.burma", "peer5", 50_000),
    ("com.totalaccesstv.live", "peer5", None),
    ("dev.hw.app.tgnd", "peer5", None),
    ("tv.almighty.apk", "peer5", None),
    ("com.rvcomx.brpro", "peer5", None),
    ("com.lts.cricingif", "peer5", None),
]

# §IV-D: the three apps allowing cellular upload AND download.
CELLULAR_FULL_APPS = {"com.bongo.bioscope", "com.portonics.mygp", "com.arenacloudtv.android"}

# Table IV: confirmed private PDN services (domain, signaling host, visits).
PRIVATE_SERVICES: list[tuple[str, str, int]] = [
    ("bilibili.com", "hw-v2-web-player-tracker.biliapi.net", 911_000_000),
    ("ok.ru", "vm.mycdn.me", 662_000_000),
    ("douyu.com", "wsproxy.douyu.com", 95_000_000),
    ("v.qq.com", "webrtcpunch.video.qq.com", 92_000_000),
    ("iqiyi.com", "broker-qx-ws2.iqiyi.com", 82_000_000),
    ("huya.com", "wsapi.huya.com", 61_000_000),
    ("youku.com", "ws.mmstat.com", 60_000_000),
    ("tudou.com", "ws.mmstat.com", 44_000_000),
    ("mgtv.com", "signal.api.mgtv.com", 42_000_000),
    ("younow.com", "signaling.younow-prod.video.propsproject.com", 1_000_000),
]

# Private services whose tokens are NOT bound to the video source
# (Mango TV confirmed free-ridable; Tencent Video token unbound).
PRIVATE_UNBOUND_TOKENS = {"mgtv.com", "v.qq.com"}

ADULT_RELAY_SITES = ["xhamsterlive.com", "stripchat.com"]
WEBRTC_TRACKING_SITES = ["tracker-cdn.example-ads.com", "fingerprintjs.example.net", "metrics.example-media.tv"]

# Potential-but-unconfirmed split per provider (Table I: potential 60/53/21
# websites minus confirmed 16/1/0).
POTENTIAL_UNCONFIRMED_SITES = {"peer5": 44, "streamroot": 52, "viblast": 21}
# Apps: potential 31/6/1 minus confirmed 15/3/0.
POTENTIAL_UNCONFIRMED_APPS = {"peer5": 16, "streamroot": 3, "viblast": 1}

# APK version budgets (Table I): pdn-signature APKs for confirmed apps /
# for potential-only apps, per provider.
APK_BUDGETS = {
    "peer5": {"confirmed_pdn": 199, "potential_pdn": 349},
    "streamroot": {"confirmed_pdn": 53, "potential_pdn": 15},
    "viblast": {"confirmed_pdn": 0, "potential_pdn": 11},
}

# §IV-B key extraction ground truth. Keys are extractable unless the
# customer obfuscates them; of the 44 extractable, 4 are expired; of the
# 36 valid Peer5 keys, 11 lack a domain allowlist.
EXTRACTABLE_KEYS = {"peer5": 38, "streamroot": 2, "viblast": 4}
EXPIRED_EXTRACTABLE = {"peer5": 2, "streamroot": 1, "viblast": 1}
PEER5_NO_ALLOWLIST_VALID = 11

# Inline JS carried by the non-PDN WebRTC populations: fingerprinting
# trackers and generic live-streaming sites that match only the generic
# signatures. Pure string templates — no shared mutable state.
_TRACKING_JS = (
    "<script>var pc = new RTCPeerConnection({iceServers:[]});"
    "pc.createDataChannel('probe');</script>"
)
_GENERIC_JS = (
    "<script>var signal = new WebSocket('wss://{host}/live-ws');"
    "var pc = new RTCPeerConnection();</script>"
)


@dataclass
class CorpusConfig:
    """Scale knobs for the synthetic internet."""

    virtual_total_domains: int = 300_000
    virtual_video_related: int = 68_713
    virtual_source_search_hits: int = 44
    virtual_sampled_apps: int = 1_500_000
    generic_webrtc_total: int = 385  # sites matching generic signatures
    generic_webrtc_top10k: int = 57  # of which in the top 10K (dyn. tested)
    untriggerable_generic_top10k: int = 42
    noise_video_sites: int = 80
    noise_nonvideo_sites: int = 40
    noise_apps: int = 25
    video_segments: int = 8
    segment_seconds: float = 4.0
    segment_bytes: int = 60_000


def quick_corpus_config() -> CorpusConfig:
    """A scaled-down corpus for smoke runs: ground truth intact, noise cut.

    The confirmed customers (and hence every paper count) are all still
    present; only the synthetic noise population shrinks, so quick runs
    stay representative while finishing in about a second.
    """
    return CorpusConfig(noise_video_sites=8, noise_nonvideo_sites=4, noise_apps=4)


@dataclass
class CustomerRecord:
    """Ground truth about one PDN customer integration."""

    name: str  # domain or package
    provider: str
    kind: str  # "website" | "app" | "private"
    confirmed_expected: bool
    api_key: str | None = None
    key_extractable: bool = False
    key_valid: bool = True
    key_has_allowlist: bool = True
    monthly_visits: int | None = None
    downloads: int | None = None


@dataclass
class Corpus:
    """The materialised internet plus its ground truth."""

    env: Environment
    config: CorpusConfig
    origin: OriginServer
    cdn: CdnEdge
    providers: dict[str, PdnProvider] = field(default_factory=dict)
    private_providers: dict[str, PdnProvider] = field(default_factory=dict)
    websites: list[Website] = field(default_factory=list)
    apps: list[AndroidApp] = field(default_factory=list)
    records: list[CustomerRecord] = field(default_factory=list)
    top10k_webrtc_domains: list[str] = field(default_factory=list)
    plan: "CorpusPlan | None" = None

    def website(self, domain: str) -> Website | None:
        """Website."""
        for site in self.websites:
            if site.domain == domain:
                return site
        return None

    def app(self, package: str) -> AndroidApp | None:
        """App."""
        for app in self.apps:
            if app.package_name == package:
                return app
        return None

    def record_for(self, name: str) -> CustomerRecord | None:
        """Record for."""
        for record in self.records:
            if record.name == name:
                return record
        return None

    def expected_confirmed(self, kind: str) -> set[str]:
        """Expected confirmed."""
        return {r.name for r in self.records if r.kind == kind and r.confirmed_expected}

    def extractable_keys(self) -> list[CustomerRecord]:
        """Extractable keys."""
        return [r for r in self.records if r.key_extractable and r.api_key]


# --------------------------------------------------------------------------
# The plan: the corpus as immutable data, addressable by index.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteSpec:
    """Everything needed to materialise one website, as pure data.

    A spec is self-contained: materialising it touches only stateless
    named RNG forks keyed by the domain (or customer id), so the same
    spec builds the same site no matter which shard handles it, in what
    order, or alongside which other specs.
    """

    kind: str  # confirmed|potential|private|adult|tracking|generic|longtail|noise_video|noise_plain
    domain: str
    rank: int
    category: str
    provider: str | None = None  # public provider name (confirmed/potential)
    monthly_visits: int | None = None
    signaling_host: str | None = None  # private/adult services
    #: The first PRIVATE_SERVICES domain using this signaling host — the
    #: provider profile is named after it so youku.com/tudou.com resolve
    #: to the *same* ws.mmstat.com service regardless of which shard
    #: materialises which platform first.
    signaling_owner: str | None = None
    video_bound_tokens: bool = True
    load_condition: LoadCondition = LoadCondition.ALWAYS
    geo_country: str = ""
    deep_pages: bool = False
    extractable: bool = False
    expired: bool = False
    no_allowlist: bool = False
    top10k: bool = False
    video_id: str | None = None  # None = the shared corpus video (or none)
    confirmed_expected: bool = False


@dataclass(frozen=True)
class AppSpec:
    """Everything needed to materialise one Android app, as pure data."""

    kind: str  # confirmed_app | potential_app | noise_app
    package: str
    provider: str | None = None
    downloads: int | None = None
    pdn_versions: int = 0  # raw APK-budget spread (builder applies max(1, .))
    plain_versions: int = 0
    cellular_full: bool = False
    video_id: str | None = None
    load_condition: LoadCondition = LoadCondition.ALWAYS
    confirmed_expected: bool = False


class _KeyPlan:
    """Allocates extractable/expired/no-allowlist key slots per provider."""

    def __init__(self) -> None:
        self.extractable_left = dict(EXTRACTABLE_KEYS)
        self.expired_left = dict(EXPIRED_EXTRACTABLE)
        self.no_allowlist_left = PEER5_NO_ALLOWLIST_VALID

    def take_extractable(self, provider: str) -> bool:
        """Take extractable."""
        if self.extractable_left.get(provider, 0) > 0:
            self.extractable_left[provider] -= 1
            return True
        return False

    def take_expired(self, provider: str) -> bool:
        """Take expired."""
        if self.expired_left.get(provider, 0) > 0:
            self.expired_left[provider] -= 1
            return True
        return False

    def take_no_allowlist(self, provider: str) -> bool:
        """Take no allowlist."""
        if provider == "peer5" and self.no_allowlist_left > 0:
            self.no_allowlist_left -= 1
            return True
        return False

    def verify(self) -> None:
        """Return True if the signature checks out."""
        leftover = (
            sum(self.extractable_left.values())
            + sum(self.expired_left.values())
            + self.no_allowlist_left
        )
        if leftover:
            raise RuntimeError(
                f"key plan not exhausted: {self.extractable_left} {self.expired_left} "
                f"no-allowlist={self.no_allowlist_left}"
            )


def _apk_spread(total: int, parts: int) -> list[int]:
    """Split ``total`` APKs across ``parts`` apps, deterministic."""
    if parts == 0:
        return []
    base = total // parts
    out = [base] * parts
    for i in range(total - base * parts):
        out[i] += 1
    return out


def _ground_site_specs(config: CorpusConfig) -> list[SiteSpec]:
    """The ground-truth website population, in the legacy build order.

    The :class:`_KeyPlan` allocation runs here, in exactly the order the
    old ``_add_*`` functions consumed it, so which customer gets an
    extractable / expired / no-allowlist key is unchanged.
    """
    key_plan = _KeyPlan()
    specs: list[SiteSpec] = []
    for rank_offset, (domain, provider_name, visits) in enumerate(CONFIRMED_WEBSITES):
        # Confirmed sites never use expired keys (they join successfully);
        # a handful of them are among the 11 Peer5 no-allowlist customers.
        no_allowlist = (
            provider_name == "peer5"
            and rank_offset % 3 == 0
            and key_plan.take_no_allowlist(provider_name)
        )
        specs.append(
            SiteSpec(
                kind="confirmed",
                domain=domain,
                rank=200 + rank_offset * 37,
                category="tv",
                provider=provider_name,
                monthly_visits=visits,
                extractable=key_plan.take_extractable(provider_name),
                no_allowlist=no_allowlist,
                video_id=f"vod-{domain.replace('.', '-')}",
                confirmed_expected=True,
            )
        )
    conditions = [
        (LoadCondition.GEO, "CN"),
        (LoadCondition.GEO, "RU"),
        (LoadCondition.SUBSCRIPTION, ""),
    ]
    counter = 0
    for provider_name, count in POTENTIAL_UNCONFIRMED_SITES.items():
        for i in range(count):
            counter += 1
            condition, geo = conditions[counter % len(conditions)]
            extractable = key_plan.take_extractable(provider_name)
            expired = extractable and key_plan.take_expired(provider_name)
            # Only valid, extracted keys can show up in the §IV-B 11/36
            # cross-domain statistic, so no-allowlist slots go to those.
            no_allowlist = (
                extractable and not expired and key_plan.take_no_allowlist(provider_name)
            )
            specs.append(
                SiteSpec(
                    kind="potential",
                    domain=f"{provider_name}-potential-{i}.example.org",
                    rank=2_000 + counter * 71,
                    category="video",
                    provider=provider_name,
                    load_condition=condition,
                    geo_country=geo,
                    # Some potential customers carry the embed on a depth-2 page.
                    deep_pages=counter % 4 == 0,
                    extractable=extractable,
                    expired=expired,
                    no_allowlist=no_allowlist,
                )
            )
    key_plan.verify()
    owner_by_host: dict[str, str] = {}
    for rank_offset, (domain, signaling_host, visits) in enumerate(PRIVATE_SERVICES):
        owner = owner_by_host.setdefault(signaling_host, domain)
        specs.append(
            SiteSpec(
                kind="private",
                domain=domain,
                rank=10 + rank_offset * 13,
                category="live",
                monthly_visits=visits,
                signaling_host=signaling_host,
                signaling_owner=owner,
                video_bound_tokens=owner not in PRIVATE_UNBOUND_TOKENS,
                top10k=True,
                video_id=f"private-{domain.replace('.', '-')}",
                confirmed_expected=True,
            )
        )
    for i, domain in enumerate(ADULT_RELAY_SITES):
        specs.append(
            SiteSpec(
                kind="adult",
                domain=domain,
                rank=3_000 + i * 311,
                category="adult",
                signaling_host=f"relay.{domain}",
                signaling_owner=domain,
                top10k=True,
                video_id=f"adult-{i}",
            )
        )
    for i, domain in enumerate(WEBRTC_TRACKING_SITES):
        specs.append(
            SiteSpec(kind="tracking", domain=domain, rank=4_000 + i * 97,
                     category="tv", top10k=True)
        )
    for i in range(config.untriggerable_generic_top10k):
        specs.append(
            SiteSpec(kind="generic", domain=f"generic-webrtc-{i}.example.tv",
                     rank=5_000 + i * 29, category="video", top10k=True)
        )
    # The remaining generic-WebRTC sites rank below the top 10K; the paper
    # never dynamically tested them. A small materialised sample stands in
    # for the tail; the virtual count covers the rest.
    for i in range(10):
        specs.append(
            SiteSpec(kind="longtail", domain=f"longtail-webrtc-{i}.example.net",
                     rank=40_000 + i * 997, category="video")
        )
    return specs


def _ground_app_specs(config: CorpusConfig) -> list[AppSpec]:
    """The ground-truth app population, in the legacy build order."""
    confirmed_by_provider: dict[str, list[tuple[str, int | None]]] = {}
    for package, provider_name, downloads in CONFIRMED_APPS:
        confirmed_by_provider.setdefault(provider_name, []).append((package, downloads))
    specs: list[AppSpec] = []
    for provider_name, budget in APK_BUDGETS.items():
        confirmed = confirmed_by_provider.get(provider_name, [])
        spreads = _apk_spread(budget["confirmed_pdn"], len(confirmed))
        for (package, downloads), pdn_versions in zip(confirmed, spreads):
            specs.append(
                AppSpec(
                    kind="confirmed_app",
                    package=package,
                    provider=provider_name,
                    downloads=downloads,
                    pdn_versions=pdn_versions,
                    plain_versions=1,  # a pre-integration version
                    cellular_full=package in CELLULAR_FULL_APPS,
                    video_id=f"app-{package.replace('.', '-')}",
                    confirmed_expected=True,
                )
            )
        potential_count = POTENTIAL_UNCONFIRMED_APPS.get(provider_name, 0)
        spreads = _apk_spread(budget["potential_pdn"], potential_count)
        for i, pdn_versions in enumerate(spreads):
            specs.append(
                AppSpec(
                    kind="potential_app",
                    package=f"com.{provider_name}.potential{i}",
                    provider=provider_name,
                    pdn_versions=pdn_versions,
                    load_condition=LoadCondition.GEO,
                )
            )
    return specs


class CorpusPlan:
    """The whole corpus as addressable specs, before anything is built.

    Ground truth (a few hundred items) is laid out eagerly; the noise
    population is addressed procedurally by index, so the plan's memory
    footprint is independent of ``noise_video_sites`` — a 3M-domain plan
    is as cheap as the quick one.
    """

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()
        self.ground_sites: list[SiteSpec] = _ground_site_specs(self.config)
        self.ground_apps: list[AppSpec] = _ground_app_specs(self.config)
        self._site_specs_by_domain = {s.domain: s for s in self.ground_sites}
        self._app_specs_by_package = {a.package: a for a in self.ground_apps}

    # -- addressing -------------------------------------------------------

    @property
    def noise_sites(self) -> int:
        """Noise sites."""
        return self.config.noise_video_sites + self.config.noise_nonvideo_sites

    @property
    def total_sites(self) -> int:
        """Total sites."""
        return len(self.ground_sites) + self.noise_sites

    @property
    def total_apps(self) -> int:
        """Total apps."""
        return len(self.ground_apps) + self.config.noise_apps

    def site_spec(self, index: int) -> SiteSpec:
        """The site spec at ``index``: ground truth first, then noise."""
        if index < len(self.ground_sites):
            return self.ground_sites[index]
        return self.noise_site_spec(index - len(self.ground_sites))

    def app_spec(self, index: int) -> AppSpec:
        """The app spec at ``index``: ground truth first, then noise."""
        if index < len(self.ground_apps):
            return self.ground_apps[index]
        return self.noise_app_spec(index - len(self.ground_apps))

    def noise_site_spec(self, i: int) -> SiteSpec:
        """The ``i``-th noise site, computed (never stored)."""
        if i < self.config.noise_video_sites:
            return SiteSpec(kind="noise_video", domain=f"video-noise-{i}.example.com",
                            rank=8_000 + i * 53, category="video")
        j = i - self.config.noise_video_sites
        return SiteSpec(kind="noise_plain", domain=f"plain-noise-{j}.example.com",
                        rank=12_000 + j * 61, category="general")

    def noise_app_spec(self, i: int) -> AppSpec:
        """The ``i``-th noise app, computed (never stored)."""
        return AppSpec(kind="noise_app", package=f"com.noise.app{i}",
                       downloads=10_000 * (i + 1), plain_versions=3)

    def site_spec_for(self, domain: str) -> SiteSpec | None:
        """Ground-truth spec lookup by domain (noise sites return None)."""
        return self._site_specs_by_domain.get(domain)

    def app_spec_for(self, package: str) -> AppSpec | None:
        """Ground-truth spec lookup by package (noise apps return None)."""
        return self._app_specs_by_package.get(package)

    def top10k_domains(self) -> list[str]:
        """The top-10K WebRTC probe list, in spec (== legacy) order."""
        return [s.domain for s in self.ground_sites if s.top10k]

    # -- sharding ---------------------------------------------------------

    def shard(self, index: int, count: int) -> "CorpusShard":
        """One of ``count`` strided shards over the whole plan."""
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} out of range for {count} shards")
        return CorpusShard(self, index, count)

    def shards(self, count: int) -> list["CorpusShard"]:
        """All ``count`` shards, covering every spec exactly once."""
        return [CorpusShard(self, i, count) for i in range(max(1, count))]


@dataclass(frozen=True)
class CorpusShard:
    """A lazy strided slice of a :class:`CorpusPlan`.

    Shard ``index`` of ``count`` yields specs ``index, index+count, ...``
    — generated on demand, never stored. Because every spec materialises
    from its own named RNG forks (same experiment seed in every worker),
    the shard count partitions *work*, never *content*: the union of any
    shard decomposition is the same corpus, and re-sharding cannot move
    randomness between items.
    """

    plan: CorpusPlan
    index: int
    count: int

    @property
    def n_sites(self) -> int:
        """Number of site specs in this shard."""
        total = self.plan.total_sites
        return (total - self.index + self.count - 1) // self.count if total > self.index else 0

    @property
    def n_apps(self) -> int:
        """Number of app specs in this shard."""
        total = self.plan.total_apps
        return (total - self.index + self.count - 1) // self.count if total > self.index else 0

    def site_specs(self):
        """Yield this shard's site specs lazily."""
        for i in range(self.index, self.plan.total_sites, self.count):
            yield self.plan.site_spec(i)

    def app_specs(self):
        """Yield this shard's app specs lazily."""
        for i in range(self.index, self.plan.total_apps, self.count):
            yield self.plan.app_spec(i)


# --------------------------------------------------------------------------
# The builder: specs -> materialised sites/apps in an Environment.
# --------------------------------------------------------------------------


class CorpusBuilder:
    """Materialises :class:`CorpusPlan` specs into an environment.

    ``keep=False`` materialisations register the site for HTTP scanning
    but keep it out of the corpus lists; pair with :meth:`release_site`
    to drop it from the URL space afterwards — that scan-and-release
    cycle is what bounds streaming-shard memory. ``with_videos=False``
    skips origin segment payloads (page HTML only carries the video URL
    string, so scan results are unchanged); dynamic confirmation needs
    the real segments, so confirm-phase builders keep the default.

    Each spec must be materialised at most once per builder: signup is a
    provider-side effect, and a second signup for the same customer
    would mint that customer's *next* serial key.
    """

    def __init__(
        self,
        env: Environment,
        config: CorpusConfig | None = None,
        plan: CorpusPlan | None = None,
        with_videos: bool = True,
    ) -> None:
        self.plan = plan if plan is not None else CorpusPlan(config)
        self.config = self.plan.config
        self.env = env
        self.with_videos = with_videos
        origin = OriginServer(env.loop, hostname="origin.corpus.net")
        cdn = CdnEdge(origin, hostname="cdn.corpus.net")
        env.urlspace.register(origin.hostname, origin)
        env.urlspace.register(cdn.hostname, cdn)
        self.corpus = Corpus(env, self.config, origin, cdn, plan=self.plan)
        for profile in (PEER5, STREAMROOT, VIBLAST):
            provider = PdnProvider(env.loop, env.rand, profile)
            provider.install(env.urlspace)
            self.corpus.providers[profile.name] = provider
        self._private_by_signaling: dict[str, PdnProvider] = {}
        if self.with_videos:
            self._add_video("corpus-shared")

    # -- sites ------------------------------------------------------------

    def materialize_site(self, spec: SiteSpec, keep: bool = True) -> Website:
        """Build one website and register it in the URL space.

        ``keep=True`` also appends it to the corpus lists (websites,
        records, top-10K probe list) — the full-corpus path. Streaming
        shards use ``keep=False`` for droppable populations.
        """
        build = self._SITE_BUILDERS[spec.kind]
        site, record = build(self, spec)
        self.env.urlspace.register(spec.domain, site)
        if keep:
            self.corpus.websites.append(site)
            if spec.top10k:
                self.corpus.top10k_webrtc_domains.append(spec.domain)
            if record is not None:
                self.corpus.records.append(record)
        return site

    def release_site(self, spec: SiteSpec) -> None:
        """Drop a ``keep=False`` site from the URL space after scanning."""
        self.env.urlspace.unregister(spec.domain)

    def _site_confirmed(self, spec: SiteSpec) -> tuple[Website, CustomerRecord]:
        provider = self.corpus.providers[spec.provider]
        domains = None if spec.no_allowlist else {spec.domain}
        key = provider.signup_customer(spec.domain, domains, ClientPolicy())
        video_url = self._video_url(spec.video_id)
        site = Website(spec.domain, rank=spec.rank, category=spec.category,
                       monthly_visits=spec.monthly_visits)
        embed = PdnEmbed(provider, key.key, video_url, obfuscated=not spec.extractable)
        site.add_page(WebPage("/", f"{spec.domain} home", has_video=True, embed=embed,
                              links=["/live", "/about"]))
        site.add_page(WebPage("/live", "live", has_video=True, embed=embed))
        site.add_page(WebPage("/about", "about"))
        record = CustomerRecord(
            name=spec.domain,
            provider=spec.provider,
            kind="website",
            confirmed_expected=True,
            api_key=key.key,
            key_extractable=spec.extractable,
            key_valid=True,
            key_has_allowlist=key.has_allowlist,
            monthly_visits=spec.monthly_visits,
        )
        return site, record

    def _site_potential(self, spec: SiteSpec) -> tuple[Website, CustomerRecord]:
        provider = self.corpus.providers[spec.provider]
        domains = None if spec.no_allowlist else {spec.domain}
        key = provider.signup_customer(spec.domain, domains, ClientPolicy())
        if spec.expired:
            provider.authenticator.revoke_key(key.key)
        embed = PdnEmbed(
            provider,
            key.key,
            self._video_url(None),
            obfuscated=not spec.extractable,
            load_condition=spec.load_condition,
            geo_country=spec.geo_country or "CN",
        )
        site = Website(spec.domain, rank=spec.rank, category=spec.category)
        if spec.deep_pages:
            site.add_page(WebPage("/", "home", has_video=True, links=["/videos"]))
            site.add_page(WebPage("/videos", "videos", has_video=True, links=["/videos/live"]))
            site.add_page(WebPage("/videos/live", "live", has_video=True, embed=embed))
        else:
            site.add_page(WebPage("/", "home", has_video=True, embed=embed))
        record = CustomerRecord(
            name=spec.domain,
            provider=spec.provider,
            kind="website",
            confirmed_expected=False,
            api_key=key.key,
            key_extractable=spec.extractable,
            key_valid=not spec.expired,
            key_has_allowlist=key.has_allowlist,
        )
        return site, record

    def _site_private(self, spec: SiteSpec) -> tuple[Website, CustomerRecord | None]:
        provider = self._private_provider(spec)
        provider.signup_customer(spec.domain, {spec.domain}, ClientPolicy())
        self.corpus.private_providers[spec.domain] = provider
        video_url = self._video_url(spec.video_id)
        provider.register_drm_video(video_url)
        site = Website(spec.domain, rank=spec.rank, category=spec.category,
                       monthly_visits=spec.monthly_visits)
        embed = PdnEmbed(provider, spec.domain, video_url,
                         relay_only=spec.kind == "adult")
        site.add_page(WebPage("/", spec.domain, has_video=True, embed=embed))
        if spec.kind == "adult":
            return site, None
        record = CustomerRecord(
            name=spec.domain,
            provider=f"private:{spec.domain}",
            kind="private",
            confirmed_expected=True,
            monthly_visits=spec.monthly_visits,
        )
        return site, record

    def _site_tracking(self, spec: SiteSpec) -> tuple[Website, None]:
        site = Website(spec.domain, rank=spec.rank, category=spec.category)
        site.add_page(WebPage("/", spec.domain, has_video=True, extra_html=_TRACKING_JS))
        return site, None

    def _site_generic(self, spec: SiteSpec) -> tuple[Website, None]:
        site = Website(spec.domain, rank=spec.rank, category=spec.category)
        site.add_page(WebPage("/", spec.domain, has_video=True,
                              extra_html=_GENERIC_JS.format(host=spec.domain)))
        return site, None

    def _site_noise_video(self, spec: SiteSpec) -> tuple[Website, None]:
        site = Website(spec.domain, rank=spec.rank, category=spec.category)
        site.add_page(WebPage("/", spec.domain, has_video=True, links=["/shows"]))
        site.add_page(WebPage("/shows", "shows", has_video=True))
        return site, None

    def _site_noise_plain(self, spec: SiteSpec) -> tuple[Website, None]:
        site = Website(spec.domain, rank=spec.rank, category=spec.category)
        site.add_page(WebPage("/", spec.domain, has_video=False))
        return site, None

    _SITE_BUILDERS = {
        "confirmed": _site_confirmed,
        "potential": _site_potential,
        "private": _site_private,
        "adult": _site_private,  # youku-style embed, relay-only, no record
        "tracking": _site_tracking,
        "generic": _site_generic,
        "longtail": _site_generic,
        "noise_video": _site_noise_video,
        "noise_plain": _site_noise_plain,
    }

    # -- apps -------------------------------------------------------------

    def materialize_app(self, spec: AppSpec, keep: bool = True) -> AndroidApp:
        """Build one Android app; ``keep=True`` adds it to the corpus."""
        if spec.kind == "noise_app":
            app = AndroidApp(spec.package, downloads=spec.downloads)
            for v in range(spec.plain_versions):
                app.add_version(build_plain_apk(10 + v))
            record = None
        else:
            provider = self.corpus.providers[spec.provider]
            cellular = CellularPolicy.FULL if spec.cellular_full else CellularPolicy.LEECH
            key = provider.signup_customer(
                spec.package, {spec.package}, ClientPolicy(cellular=cellular)
            )
            embed = PdnEmbed(
                provider,
                key.key,
                self._video_url(spec.video_id),
                load_condition=spec.load_condition,
                geo_country="CN",
            )
            app = AndroidApp(spec.package, downloads=spec.downloads)
            for v in range(max(1, spec.pdn_versions)):
                app.add_version(build_pdn_apk(100 + v, embed))
            for v in range(spec.plain_versions):
                app.add_version(build_plain_apk(50))
            record = CustomerRecord(
                name=spec.package,
                provider=spec.provider,
                kind="app",
                confirmed_expected=spec.confirmed_expected,
                api_key=key.key,
                key_extractable=False,  # app keys ship obfuscated
                key_valid=True,
                key_has_allowlist=True,
                downloads=spec.downloads if spec.confirmed_expected else None,
            )
        if keep:
            self.corpus.apps.append(app)
            if record is not None:
                self.corpus.records.append(record)
        return app

    # -- shared infrastructure --------------------------------------------

    def _private_provider(self, spec: SiteSpec) -> PdnProvider:
        provider = self._private_by_signaling.get(spec.signaling_host)
        if provider is None:
            # youku.com and tudou.com share ws.mmstat.com: one Alibaba
            # signaling service with two customer platforms. The profile
            # is always named after the spec's signaling_owner, so the
            # service is identical no matter which platform builds first.
            profile = private_profile(
                spec.signaling_owner,
                spec.signaling_host,
                video_bound_tokens=spec.video_bound_tokens,
            )
            provider = PdnProvider(self.env.loop, self.env.rand, profile)
            provider.install(self.env.urlspace)
            self._private_by_signaling[spec.signaling_host] = provider
        return provider

    def _video_url(self, video_id: str | None) -> str:
        """The CDN playlist URL for a spec's video, creating it if asked.

        ``video_id=None`` is the shared corpus video. Segment payloads
        are only materialised ``with_videos``; the URL string — all the
        static scan ever sees — is the same either way.
        """
        video_id = video_id or "corpus-shared"
        if self.with_videos and video_id != "corpus-shared":
            self._add_video(video_id)
        return vod_playlist_url(self.corpus.cdn.hostname, video_id)

    def _add_video(self, video_id: str) -> None:
        config = self.config
        video = make_video(
            video_id,
            num_segments=config.video_segments,
            segment_duration=config.segment_seconds,
            segment_size=config.segment_bytes,
        )
        self.corpus.origin.add_vod(video)


def build_corpus(env: Environment, config: CorpusConfig | None = None) -> Corpus:
    """Materialise the synthetic internet into ``env``'s URL space.

    Equivalent to materialising every :class:`CorpusShard` of the plan;
    items are visited in the legacy order (public customers, apps,
    private services, WebRTC populations, noise) so corpora built before
    the plan/shard split are reproduced bit-for-bit.
    """
    builder = CorpusBuilder(env, config)
    plan = builder.plan
    ground_public = [s for s in plan.ground_sites if s.kind in ("confirmed", "potential")]
    ground_rest = [s for s in plan.ground_sites if s.kind not in ("confirmed", "potential")]
    for spec in ground_public:
        builder.materialize_site(spec)
    for spec in plan.ground_apps:
        builder.materialize_app(spec)
    for spec in ground_rest:
        builder.materialize_site(spec)
    for i in range(plan.noise_sites):
        builder.materialize_site(plan.noise_site_spec(i))
    for i in range(plan.config.noise_apps):
        builder.materialize_app(plan.noise_app_spec(i))
    env.rand.fork("corpus-shuffle")  # reserved stream, keeps older seeds stable
    return builder.corpus


def build_ground_corpus(env: Environment, config: CorpusConfig | None = None) -> Corpus:
    """Materialise only the ground-truth population (no noise).

    The streaming pipeline's confirmation phase runs on this: every
    dynamic-confirmation candidate is ground truth, and because corpus
    construction consumes no sequential draws from ``env``, the
    environment state entering confirmation matches a full
    :func:`build_corpus` bit-for-bit while skipping the (arbitrarily
    large) noise population entirely.
    """
    builder = CorpusBuilder(env, config)
    plan = builder.plan
    for spec in (s for s in plan.ground_sites if s.kind in ("confirmed", "potential")):
        builder.materialize_site(spec)
    for spec in plan.ground_apps:
        builder.materialize_app(spec)
    for spec in (s for s in plan.ground_sites if s.kind not in ("confirmed", "potential")):
        builder.materialize_site(spec)
    return builder.corpus
