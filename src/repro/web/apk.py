"""Android apps and APK versions.

The app-side detector unpacks APKs and looks for PDN SDK namespaces
(``com.viblast.android``), manifest metadata keys
(``io.streamroot.dna.StreamrootKey``), and embedded API keys — the same
signatures the paper extracted. An app may ship many APK versions, only
some of which contain the SDK (the paper found 252 of 627 versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.page import PdnEmbed


@dataclass
class ApkVersion:
    """One unpacked APK: class paths + manifest metadata + strings."""

    version_code: int
    class_paths: list[str] = field(default_factory=list)  # e.g. com/peer5/sdk/Engine.class
    manifest_metadata: dict[str, str] = field(default_factory=dict)
    string_pool: list[str] = field(default_factory=list)  # embedded constants
    embed: PdnEmbed | None = None  # ground truth: the live integration, if any

    def contains_namespace(self, namespace: str) -> bool:
        """Contains namespace."""
        prefix = namespace.replace(".", "/")
        return any(path.startswith(prefix) for path in self.class_paths)

    def all_strings(self) -> list[str]:
        """All strings."""
        return self.string_pool + list(self.manifest_metadata.values())


@dataclass
class AndroidApp:
    """An app in the store, with its version history."""

    package_name: str
    downloads: int | None = None  # Google Play installs, None = unlisted
    category: str = "video"
    versions: list[ApkVersion] = field(default_factory=list)

    @property
    def latest(self) -> ApkVersion | None:
        """Latest."""
        return max(self.versions, key=lambda v: v.version_code) if self.versions else None

    def add_version(self, version: ApkVersion) -> ApkVersion:
        """Add version."""
        self.versions.append(version)
        return version

    def pdn_versions(self) -> list[ApkVersion]:
        """Pdn versions."""
        return [v for v in self.versions if v.embed is not None]


def build_pdn_apk(
    version_code: int,
    embed: PdnEmbed,
    extra_classes: list[str] | None = None,
    obfuscated: bool = True,
) -> ApkVersion:
    """Assemble an APK version that truly integrates a PDN SDK.

    With ``obfuscated`` (the common case in the paper — app keys were
    not among the 44 regex-extractable ones), the manifest references a
    runtime resource and the key never appears as a plain string.
    """
    profile = embed.profile
    namespace_path = (profile.android_namespace or profile.name).replace(".", "/")
    if obfuscated:
        strings = [profile.sdk_url_pattern.format(key="RUNTIME_KEY")]
        manifest_value = "@string/pdn_key"
    else:
        strings = [profile.sdk_url(embed.credential), embed.credential]
        manifest_value = embed.credential
    version = ApkVersion(
        version_code=version_code,
        class_paths=[
            f"{namespace_path}/Engine.class",
            f"{namespace_path}/PeerAgent.class",
            "com/example/player/MainActivity.class",
            *(extra_classes or []),
        ],
        string_pool=strings,
        embed=embed,
    )
    if profile.manifest_key:
        version.manifest_metadata[profile.manifest_key] = manifest_value
    return version


def build_plain_apk(version_code: int) -> ApkVersion:
    """An APK with no PDN integration (noise / pre-integration versions)."""
    return ApkVersion(
        version_code=version_code,
        class_paths=[
            "com/example/player/MainActivity.class",
            "com/google/android/exoplayer2/ExoPlayer.class",
        ],
        string_pool=["https://example-analytics.com/v1/track"],
    )
