"""Origin and CDN edge servers.

The paper's controlled experiments run a Wowza origin on EC2 fronted by
CloudFront; :class:`OriginServer` and :class:`CdnEdge` are those two
boxes. The edge caches segment bodies and accounts the bytes it serves
(the CDN bill a PDN exists to reduce), which the Fig. 4/5 and defense
benchmarks read back.

URL layout served by the origin/edge::

    /vod/<video_id>/playlist.m3u8      VOD playlist (ENDLIST)
    /vod/<video_id>/seg-<i>.ts         VOD segment
    /live/<channel>/playlist.m3u8      live sliding-window playlist
    /live/<channel>/seg-<i>.ts         live segment
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.clock import EventLoop
from repro.streaming.hls import VariantEntry, generate_master_playlist, generate_media_playlist
from repro.streaming.http import HttpRequest, HttpResponse
from repro.streaming.video import VideoSource


@dataclass
class LiveChannel:
    """A live stream: segments become available as wall-clock advances."""

    video: VideoSource
    window: int = 5
    started_at: float = 0.0
    loop_forever: bool = True  # keep cycling segments so a channel never ends

    def available_range(self, now: float) -> tuple[int, int]:
        """(first_index, last_index_exclusive) of the current live window."""
        elapsed = max(0.0, now - self.started_at)
        produced = int(elapsed / self.video.segment_duration) + 1
        if not self.loop_forever:
            produced = min(produced, len(self.video.segments))
        first = max(0, produced - self.window)
        return first, produced

    def segment_for(self, index: int) -> bytes | None:
        """Segment for."""
        total = len(self.video.segments)
        if total == 0:
            return None
        if self.loop_forever:
            return self.video.segments[index % total].data
        seg = self.video.segment(index)
        return seg.data if seg else None

    def playlist(self, now: float) -> str:
        """Playlist."""
        first, end = self.available_range(now)
        if self.loop_forever:
            # Render the window by cycling through the source segments.
            lines = [
                "#EXTM3U",
                "#EXT-X-VERSION:3",
                f"#EXT-X-TARGETDURATION:{int(round(self.video.segment_duration))}",
                f"#EXT-X-MEDIA-SEQUENCE:{first}",
            ]
            for index in range(first, end):
                duration = self.video.segments[index % len(self.video.segments)].duration
                lines.append(f"#EXTINF:{duration:.3f},")
                lines.append(f"seg-{index}.ts")
            return "\n".join(lines) + "\n"
        return generate_media_playlist(self.video, first_index=first, window=end - first, endlist=False)


class OriginServer:
    """The streaming origin (Wowza analog)."""

    def __init__(self, loop: EventLoop, hostname: str = "origin.test.com") -> None:
        self.loop = loop
        self.hostname = hostname
        self._vod: dict[str, VideoSource] = {}
        self._live: dict[str, LiveChannel] = {}
        self._extra_files: dict[tuple[str, str], bytes] = {}
        self.requests_served = 0
        self.bytes_served = 0

    def add_vod(self, video: VideoSource) -> None:
        """Add vod."""
        self._vod[video.video_id] = video

    def add_extra_file(self, video_id: str, filename: str, body: bytes) -> None:
        """Publish a sidecar object next to a video (e.g. an integrity
        manifest for the hash-based pollution defenses)."""
        self._extra_files[(video_id, filename)] = body

    def add_vod_renditions(self, video_id: str, renditions: dict[str, VideoSource]) -> None:
        """Publish a multi-bitrate VOD: a master playlist plus one media
        playlist (and segment set) per rendition."""
        variants = []
        for name, video in sorted(renditions.items(), key=lambda kv: kv[1].total_bytes):
            self._vod[f"{video_id}/{name}"] = video
            bits_per_second = int(video.total_bytes * 8 / max(1.0, video.duration))
            variants.append(VariantEntry(f"{name}/playlist.m3u8", bits_per_second, name))
        self.add_extra_file(video_id, "master.m3u8", generate_master_playlist(variants).encode())

    def add_live(self, channel_id: str, video: VideoSource, window: int = 5) -> LiveChannel:
        """Add live."""
        channel = LiveChannel(video, window=window, started_at=self.loop.now)
        self._live[channel_id] = channel
        return channel

    def vod(self, video_id: str) -> VideoSource | None:
        """Vod."""
        return self._vod.get(video_id)

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        self.requests_served += 1
        parts = [p for p in request.path.split("/") if p]
        if len(parts) == 4 and parts[0] == "vod":
            # multi-bitrate layout: /vod/<id>/<rendition>/<file>
            kind, content_id, filename = parts[0], f"{parts[1]}/{parts[2]}", parts[3]
        elif len(parts) == 3:
            kind, content_id, filename = parts
        else:
            return HttpResponse(404, b"not found")
        if kind == "vod":
            body = self._serve_vod(content_id, filename)
        elif kind == "live":
            body = self._serve_live(content_id, filename)
        else:
            body = None
        if body is None:
            return HttpResponse(404, b"not found")
        self.bytes_served += len(body)
        return HttpResponse(200, body)

    def _serve_vod(self, video_id: str, filename: str) -> bytes | None:
        extra = self._extra_files.get((video_id, filename))
        if extra is not None:
            return extra
        video = self._vod.get(video_id)
        if video is None:
            return None
        if filename == "playlist.m3u8":
            return generate_media_playlist(video).encode()
        if filename.startswith("seg-") and filename.endswith(".ts"):
            index = _parse_segment_index(filename)
            segment = video.segment(index) if index is not None else None
            return segment.data if segment else None
        return None

    def _serve_live(self, channel_id: str, filename: str) -> bytes | None:
        channel = self._live.get(channel_id)
        if channel is None:
            return None
        if filename == "playlist.m3u8":
            return channel.playlist(self.loop.now).encode()
        if filename.startswith("seg-") and filename.endswith(".ts"):
            index = _parse_segment_index(filename)
            return channel.segment_for(index) if index is not None else None
        return None


def _parse_segment_index(filename: str) -> int | None:
    stem = filename[len("seg-") : -len(".ts")]
    return int(stem) if stem.isdigit() else None


class CdnEdge:
    """A caching CDN edge (CloudFront analog) with byte billing."""

    def __init__(
        self,
        origin: OriginServer,
        hostname: str = "cdn.test.com",
        price_per_gb: float = 0.085,
        cacheable_suffixes: tuple[str, ...] = (".ts",),
    ) -> None:
        self.origin = origin
        self.hostname = hostname
        self.price_per_gb = price_per_gb
        self.cacheable_suffixes = cacheable_suffixes
        self._cache: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        self.requests_served = 0
        self._fail_requests_remaining = 0  # fault injection

    def inject_failures(self, count: int) -> None:
        """Make the next ``count`` requests fail with 503 (edge outage)."""
        self._fail_requests_remaining = count

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        self.requests_served += 1
        if self._fail_requests_remaining > 0:
            self._fail_requests_remaining -= 1
            return HttpResponse(503, b"edge outage (injected)")
        path = request.path
        cacheable = path.endswith(self.cacheable_suffixes)
        if cacheable and path in self._cache:
            self.hits += 1
            body = self._cache[path]
            self.bytes_served += len(body)
            return HttpResponse(200, body, headers={"x-cache": "hit"})
        origin_request = HttpRequest(
            request.method,
            f"https://{self.origin.hostname}{path}",
            dict(request.headers),
            request.body,
            request.client_ip,
        )
        response = self.origin.handle_request(origin_request)
        if response.ok and cacheable:
            self._cache[path] = response.body
        if cacheable:
            self.misses += 1
        if response.ok:
            self.bytes_served += len(response.body)
        response.headers["x-cache"] = "miss"
        return response

    @property
    def traffic_cost(self) -> float:
        """Dollar cost of bytes served so far."""
        return self.bytes_served / 1e9 * self.price_per_gb

    def purge(self) -> None:
        """Purge."""
        self._cache.clear()


def vod_playlist_url(cdn_host: str, video_id: str) -> str:
    """Vod playlist url."""
    return f"https://{cdn_host}/vod/{video_id}/playlist.m3u8"


def live_playlist_url(cdn_host: str, channel_id: str) -> str:
    """Live playlist url."""
    return f"https://{cdn_host}/live/{channel_id}/playlist.m3u8"
