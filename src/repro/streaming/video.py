"""Synthetic video sources.

Segment payloads are deterministic pseudo-random bytes derived from
``(video_id, segment index)``, so any two components can independently
agree on what the *authentic* content of a segment is — which is what
lets the pollution experiments verify, by hash, whether a player ended
up rendering polluted bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class VideoSegment:
    """One media segment (a TS file in HLS terms)."""

    index: int
    data: bytes
    duration: float = 10.0

    @property
    def size(self) -> int:
        """Size."""
        return len(self.data)

    @property
    def digest(self) -> str:
        """Digest."""
        return hashlib.sha256(self.data).hexdigest()

    @property
    def filename(self) -> str:
        """Filename."""
        return f"seg-{self.index}.ts"


_PAYLOAD_BLOCK = 65536  # one hash seeds 64 KiB; keeps multi-MB segments cheap


def _segment_payload(video_id: str, index: int, size: int) -> bytes:
    """Deterministic pseudo-random payload for a segment."""
    blocks = []
    remaining = size
    counter = 0
    while remaining > 0:
        digest = hashlib.sha256(f"{video_id}:{index}:{counter}".encode()).digest()
        block = (digest * (_PAYLOAD_BLOCK // len(digest)))[: min(_PAYLOAD_BLOCK, remaining)]
        blocks.append(block)
        remaining -= len(block)
        counter += 1
    return b"".join(blocks)


@dataclass
class VideoSource:
    """A complete video: an ordered list of segments plus identity."""

    video_id: str
    segments: list[VideoSegment] = field(default_factory=list)
    segment_duration: float = 10.0

    @property
    def total_bytes(self) -> int:
        """Total bytes."""
        return sum(s.size for s in self.segments)

    @property
    def duration(self) -> float:
        """Duration."""
        return sum(s.duration for s in self.segments)

    def segment(self, index: int) -> VideoSegment | None:
        """Segment."""
        if 0 <= index < len(self.segments):
            return self.segments[index]
        return None

    def authentic_digest(self, index: int) -> str | None:
        """Authentic digest."""
        seg = self.segment(index)
        return seg.digest if seg else None


def make_video(
    video_id: str,
    num_segments: int = 12,
    segment_duration: float = 10.0,
    segment_size: int = 200_000,
) -> VideoSource:
    """Build a deterministic synthetic video.

    The default segment size keeps simulations fast; experiments that
    need the paper's 3 MB segments (Table VI) pass ``segment_size``
    explicitly.
    """
    segments = [
        VideoSegment(i, _segment_payload(video_id, i, segment_size), segment_duration)
        for i in range(num_segments)
    ]
    return VideoSource(video_id, segments, segment_duration)


def make_multi_bitrate_video(
    video_id: str,
    num_segments: int = 12,
    segment_duration: float = 10.0,
    bitrates_kbps: dict[str, int] | None = None,
) -> dict[str, VideoSource]:
    """Build aligned renditions of one video at several bitrates.

    Returns ``{rendition_name: VideoSource}`` with identical segment
    counts/durations; content differs per rendition (as real encodes
    do), so PDN swarms form per rendition.
    """
    bitrates_kbps = bitrates_kbps or {"360p": 800, "720p": 2500, "1080p": 5000}
    renditions = {}
    for name, kbps in bitrates_kbps.items():
        size = int(kbps * 1000 / 8 * segment_duration)
        renditions[name] = make_video(
            f"{video_id}/{name}", num_segments, segment_duration, size
        )
    return renditions


def pollute_segment(segment: VideoSegment, marker: bytes = b"POLLUTED") -> VideoSegment:
    """Return an altered copy of a segment (same size, corrupted content)."""
    body = (marker * (len(segment.data) // len(marker) + 1))[: len(segment.data)]
    return VideoSegment(segment.index, body, segment.duration)
