"""Video streaming substrate: HTTP, synthetic video, HLS, CDN, player.

This models the delivery stack the paper's test website ran on — a
Wowza-style origin (:class:`~repro.streaming.cdn.OriginServer`), a
CloudFront-style edge (:class:`~repro.streaming.cdn.CdnEdge`) with cache
and billing, HLS playlists and TS segments, and a buffered video player
that fetches segments through a pluggable loader (which is exactly where
the PDN SDK inserts its hybrid CDN/P2P logic).
"""

from repro.streaming.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    UrlSpace,
    parse_url,
)
from repro.streaming.video import VideoSegment, VideoSource, make_multi_bitrate_video, make_video
from repro.streaming.hls import (
    MasterPlaylist,
    MediaPlaylist,
    PlaylistEntry,
    VariantEntry,
    generate_master_playlist,
    generate_media_playlist,
    is_master_playlist,
    parse_master_playlist,
    parse_media_playlist,
)
from repro.streaming.cdn import CdnEdge, LiveChannel, OriginServer
from repro.streaming.player import PlayerStats, SegmentLoader, VideoPlayer

__all__ = [
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "UrlSpace",
    "parse_url",
    "VideoSegment",
    "VideoSource",
    "make_video",
    "make_multi_bitrate_video",
    "MasterPlaylist",
    "VariantEntry",
    "generate_master_playlist",
    "parse_master_playlist",
    "is_master_playlist",
    "MediaPlaylist",
    "PlaylistEntry",
    "generate_media_playlist",
    "parse_media_playlist",
    "CdnEdge",
    "LiveChannel",
    "OriginServer",
    "PlayerStats",
    "SegmentLoader",
    "VideoPlayer",
]
