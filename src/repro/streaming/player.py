"""A buffered HLS player with a pluggable segment loader.

The loader abstraction is the seam the whole study hinges on: a plain
:class:`CdnLoader` fetches everything over HTTP, while the PDN SDK
(:mod:`repro.pdn.sdk`) substitutes a hybrid loader that serves part of
the traffic from peers. The player itself is oblivious — just like real
video elements fed by MSE — and simply records what it *played*, which
is how the pollution experiments detect that altered bytes reached the
screen.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.net.clock import EventLoop
from repro.streaming.hls import (
    is_master_playlist,
    parse_master_playlist,
    parse_media_playlist,
)
from repro.streaming.http import HttpClient
from repro.util.errors import ConfigurationError


class SegmentLoader(Protocol):
    """Fetches playlists and segments on behalf of a player."""

    def fetch_playlist(self, url: str, on_done: Callable[[str | None], None]) -> None:
        """Fetch playlist."""
        ...  # pragma: no cover

    def fetch_segment(
        self,
        base_url: str,
        uri: str,
        index: int,
        on_done: Callable[[bytes | None, str], None],
    ) -> None:
        """Fetch segment."""
        ...  # pragma: no cover


class CdnLoader:
    """The no-PDN baseline: every byte comes from the CDN over HTTP."""

    def __init__(self, http: HttpClient) -> None:
        self.http = http

    def fetch_playlist(self, url: str, on_done: Callable[[str | None], None]) -> None:
        """Fetch playlist."""
        response = self.http.get(url)
        on_done(response.body.decode() if response.ok else None)

    def fetch_segment(
        self,
        base_url: str,
        uri: str,
        index: int,
        on_done: Callable[[bytes | None, str], None],
    ) -> None:
        """Fetch segment."""
        response = self.http.get(base_url + uri)
        on_done(response.body if response.ok else None, "cdn")


@dataclass
class PlayedSegment:
    """PlayedSegment."""
    index: int
    digest: str
    source: str  # "cdn" or "p2p"
    at: float


@dataclass
class PlayerStats:
    """PlayerStats."""
    played: list[PlayedSegment] = field(default_factory=list)
    stalls: int = 0
    stall_time: float = 0.0
    seeks: int = 0
    segments_skipped: int = 0
    bytes_from_cdn: int = 0
    bytes_from_p2p: int = 0

    @property
    def p2p_ratio(self) -> float:
        """P2p ratio."""
        total = self.bytes_from_cdn + self.bytes_from_p2p
        return self.bytes_from_p2p / total if total else 0.0

    def played_digests(self) -> list[str]:
        """SHA-256 digests of every segment this peer played."""
        return [p.digest for p in self.played]


class VideoPlayer:
    """Plays one HLS stream, VOD or live."""

    def __init__(
        self,
        loop: EventLoop,
        loader: SegmentLoader,
        playlist_url: str,
        buffer_target: int = 3,
        max_segments: int | None = None,
        name: str = "player",
    ) -> None:
        if buffer_target < 1:
            raise ConfigurationError("buffer_target must be >= 1")
        if "/" not in playlist_url:
            raise ConfigurationError(f"bad playlist url {playlist_url!r}")
        self.loop = loop
        self.loader = loader
        self.playlist_url = playlist_url
        self.base_url = playlist_url.rsplit("/", 1)[0] + "/"
        self.buffer_target = buffer_target
        self.max_segments = max_segments
        self.name = name

        self.stats = PlayerStats()
        self.on_finished: Callable[[], None] | None = None
        self.finished = False
        self.started = False
        self.live = False
        # Adaptive bitrate: populated when the URL points at a master
        # playlist. Start at the lowest rendition, move up after a run of
        # smooth segments, drop a level on a stall.
        self._variants: list = []
        self._level = 0
        self._smooth_run = 0
        self.abr_upgrade_after = 4
        self.rendition_switches: list[tuple[float, str]] = []
        self._entries: dict[int, str] = {}  # absolute index -> uri
        self._durations: dict[int, float] = {}  # absolute index -> seconds
        self._end_index: int | None = None  # exclusive, known for VOD
        self._buffer: dict[int, tuple[bytes, str]] = {}
        self._inflight: set[int] = set()
        self._fetch_retries: dict[int, int] = {}
        self._skipped: set[int] = set()
        self.max_fetch_retries = 5
        self._next_fetch = 0
        self._play_index = 0
        self._playing = False
        self._stall_started: float | None = None
        self._stopped = False
        self._refresh_timer = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start this component."""
        if self.started:
            return
        self.started = True
        self._refresh_playlist()

    def stop(self) -> None:
        """Stop this component."""
        self._stopped = True
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()

    # -- playlist handling -----------------------------------------------------

    def _refresh_playlist(self) -> None:
        if self._stopped:
            return
        self.loader.fetch_playlist(self.playlist_url, self._on_playlist)

    def _on_playlist(self, text: str | None) -> None:
        if self._stopped or text is None:
            return
        if is_master_playlist(text):
            master = parse_master_playlist(text)
            self._variants = sorted(master.variants, key=lambda v: v.bandwidth)
            self._apply_level(0)
            return
        playlist = parse_media_playlist(text)
        self.live = playlist.is_live
        for offset, entry in enumerate(playlist.entries):
            index = playlist.media_sequence + offset
            self._entries.setdefault(index, entry.uri)
            self._durations.setdefault(index, entry.duration)
        if not self.started or self._next_fetch < playlist.media_sequence:
            # joining a live stream: start at the window's edge
            self._next_fetch = max(self._next_fetch, playlist.media_sequence)
            self._play_index = max(self._play_index, playlist.media_sequence)
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()  # a rendition switch may race a pending refresh
        if playlist.endlist:
            self._end_index = playlist.media_sequence + len(playlist.entries)
        else:
            # Real players jitter their refresh timers; without this,
            # co-watching live viewers phase-align and race every new
            # segment straight to the CDN. The offset is deterministic
            # per player name so runs stay reproducible.
            jitter = 0.8 + (int(hashlib.sha256(self.name.encode()).hexdigest()[:4], 16) % 100) / 250.0
            self._refresh_timer = self.loop.schedule(
                playlist.target_duration / 2 * jitter, self._refresh_playlist
            )
        self._fill_buffer()

    # -- adaptive bitrate ------------------------------------------------------

    @property
    def current_rendition(self) -> str | None:
        """Current rendition."""
        if not self._variants:
            return None
        return self._variants[self._level].name or self._variants[self._level].uri

    def _apply_level(self, level: int) -> None:
        """Point playlist/base URLs at the chosen rendition and (re)load.

        Renditions share segment naming and timing, so already-buffered
        segments stay valid; only future fetches use the new base URL.
        """
        self._level = max(0, min(level, len(self._variants) - 1))
        variant = self._variants[self._level]
        if not self.rendition_switches:
            self._master_base = self.playlist_url.rsplit("/", 1)[0] + "/"
        self.playlist_url = self._master_base + variant.uri
        self.base_url = self.playlist_url.rsplit("/", 1)[0] + "/"
        self.rendition_switches.append((self.loop.now, variant.name or variant.uri))
        self.loader.fetch_playlist(self.playlist_url, self._on_playlist)

    def _abr_on_stall(self) -> None:
        self._smooth_run = 0
        if self._variants and self._level > 0:
            self._apply_level(self._level - 1)

    def _abr_on_smooth_segment(self) -> None:
        if not self._variants:
            return
        self._smooth_run += 1
        if self._smooth_run >= self.abr_upgrade_after and self._level < len(self._variants) - 1:
            self._smooth_run = 0
            self._apply_level(self._level + 1)

    # -- fetching -----------------------------------------------------------

    def _fill_buffer(self) -> None:
        if self._stopped or self.finished:
            return
        while (
            self._next_fetch in self._entries
            and len(self._buffer) + len(self._inflight) < self.buffer_target
            and not self._played_enough(self._next_fetch)
        ):
            index = self._next_fetch
            self._next_fetch += 1
            self._inflight.add(index)
            uri = self._entries[index]
            self.loader.fetch_segment(
                self.base_url, uri, index, lambda data, source, i=index: self._on_segment(i, data, source)
            )
        if not self._playing and (self._buffer or self._inflight or not self._reached_end()):
            self._maybe_start_playback()

    def _played_enough(self, index: int) -> bool:
        return self.max_segments is not None and index >= self._first_index() + self.max_segments

    def _first_index(self) -> int:
        return min(self._entries) if self._entries else 0

    def nudge(self) -> None:
        """Churn notification: re-drive fetching after a fault heals.

        Retries pending in `_fetch_retries` already have backoff timers;
        nudging retries them now (the timer's later firing no-ops via the
        ``_inflight`` guard) and tops the buffer back up — what a real
        player's network-change listener does when connectivity returns.
        """
        if self._stopped or self.finished:
            return
        for index in sorted(self._fetch_retries):
            self._retry_fetch(index)
        self._fill_buffer()

    def seek(self, segments_forward: int = 1) -> None:
        """Scrub forward by whole segments (VoD trick-play).

        Playback jumps ahead, buffered segments behind the new position
        are discarded, and fetching resumes from the seek target. Seeks
        clamp to the known end of a VOD playlist; a seek past the end
        finishes on the next playback tick.
        """
        if self._stopped or self.finished or segments_forward < 1:
            return
        target = self._play_index + segments_forward
        if self._end_index is not None:
            target = min(target, self._end_index)
        if target <= self._play_index:
            return
        self._play_index = target
        self._next_fetch = max(self._next_fetch, target)
        for index in [i for i in self._buffer if i < target]:
            del self._buffer[index]
        self.stats.seeks += 1
        self._fill_buffer()

    def _retry_fetch(self, index: int) -> None:
        if self._stopped or self.finished or index in self._buffer or index in self._inflight:
            return
        uri = self._entries.get(index)
        if uri is None or index < self._play_index:
            return
        self._inflight.add(index)
        self.loader.fetch_segment(
            self.base_url, uri, index, lambda data, source, i=index: self._on_segment(i, data, source)
        )

    def _on_segment(self, index: int, data: bytes | None, source: str) -> None:
        self._inflight.discard(index)
        if self._stopped:
            return
        if data is None:
            # Transient delivery failure: retry with backoff; after the
            # budget, skip the segment (what real players do) rather than
            # stalling forever.
            retries = self._fetch_retries.get(index, 0) + 1
            self._fetch_retries[index] = retries
            if retries <= self.max_fetch_retries:
                self.loop.schedule(1.0, self._retry_fetch, index)
            else:
                self._skipped.add(index)
            self._fill_buffer()
            return
        self._fetch_retries.pop(index, None)
        if source == "p2p":
            self.stats.bytes_from_p2p += len(data)
        else:
            self.stats.bytes_from_cdn += len(data)
        if index < self._play_index:
            # A seek (or a live-edge jump) moved playback past this fetch
            # while it was in flight; buffering it would pin a dead entry
            # against buffer_target forever. The bytes still crossed the
            # wire, so they stay counted above.
            self._fill_buffer()
            return
        self._buffer[index] = (data, source)
        self._maybe_start_playback()
        self._fill_buffer()

    # -- playback -----------------------------------------------------------

    def _maybe_start_playback(self) -> None:
        if not self._playing and self._play_index in self._buffer:
            self._playing = True
            self.loop.schedule(0.0, self._playback_tick)

    def _playback_tick(self) -> None:
        if self._stopped or self.finished:
            return
        if self._reached_end() and self._play_index not in self._buffer:
            self._finish()
            return
        entry = self._buffer.pop(self._play_index, None)
        if entry is None:
            if self._play_index in self._skipped:
                # Permanently undeliverable: skip it and keep playing.
                self.stats.segments_skipped += 1
                self._play_index += 1
                self._fill_buffer()
                self.loop.schedule(0.1, self._playback_tick)
                return
            # buffer underrun: stall, adapt down, retry
            if self._stall_started is None:
                self._stall_started = self.loop.now
                self.stats.stalls += 1
                self._abr_on_stall()
            self.loop.schedule(0.25, self._playback_tick)
            return
        if self._stall_started is not None:
            self.stats.stall_time += self.loop.now - self._stall_started
            self._stall_started = None
        data, source = entry
        self.stats.played.append(
            PlayedSegment(self._play_index, hashlib.sha256(data).hexdigest(), source, self.loop.now)
        )
        self._abr_on_smooth_segment()
        self._play_index += 1
        self._fill_buffer()
        if self._played_enough(self._play_index):
            self._finish()
            return
        played_duration = self._durations.get(self._play_index - 1, 10.0)
        self.loop.schedule(max(0.1, played_duration), self._playback_tick)

    def _reached_end(self) -> bool:
        return self._end_index is not None and self._play_index >= self._end_index

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._playing = False
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()
        if self.on_finished is not None:
            self.on_finished()
