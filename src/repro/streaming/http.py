"""A compact HTTP model for the control plane.

Video manifests, segments, PDN signaling bootstraps, and web pages all
travel over HTTP(S) in the real system. Here HTTP exchanges are
synchronous calls routed through a :class:`UrlSpace` (DNS + TCP in one),
with byte accounting on both ends. What matters for the paper is not
packet-level HTTP realism but (a) who talks to whom, (b) the headers —
``Origin``/``Referer`` drive the free-riding authentication story — and
(c) how many bytes each party pays for; all three are modeled exactly.

An :class:`HttpClient` can be pointed at an intercepting proxy
(:mod:`repro.proxy.mitm`), which is how the paper's analyzer rewrites
headers and redirects CDN fetches to a fake CDN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.util.errors import HttpError, NetworkError


def parse_url(url: str) -> tuple[str, str, str]:
    """Split a URL into (scheme, host, path+query).

    >>> parse_url("https://cdn.test.com/vod/clip/seg-1.ts")
    ('https', 'cdn.test.com', '/vod/clip/seg-1.ts')
    """
    if "://" not in url:
        raise NetworkError(f"malformed url: {url!r}")
    scheme, rest = url.split("://", 1)
    if "/" in rest:
        host, path = rest.split("/", 1)
        path = "/" + path
    else:
        host, path = rest, "/"
    if not host:
        raise NetworkError(f"malformed url: {url!r}")
    return scheme, host, path


@dataclass
class HttpRequest:
    """One HTTP request. ``client_ip`` is the connecting address a server sees."""

    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    client_ip: str = "0.0.0.0"

    @property
    def host(self) -> str:
        """Host."""
        return parse_url(self.url)[1]

    @property
    def path(self) -> str:
        """Path."""
        return parse_url(self.url)[2]

    def header(self, name: str, default: str | None = None) -> str | None:
        """Header."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass
class HttpResponse:
    """HttpResponse."""
    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Ok."""
        return 200 <= self.status < 300

    def raise_for_status(self) -> "HttpResponse":
        """Raise for status."""
        if not self.ok:
            raise HttpError(self.status, f"HTTP {self.status} for response")
        return self


class HttpServer(Protocol):
    """Anything that answers HTTP requests."""

    def handle_request(self, request: HttpRequest) -> HttpResponse:  # pragma: no cover
        """Serve one HTTP request."""
        ...


class UrlSpace:
    """The name space of reachable HTTP servers (DNS analog)."""

    def __init__(self) -> None:
        self._servers: dict[str, HttpServer] = {}
        # Interceptors run before name resolution; the first to return a
        # response wins. The fault injector uses this to 503 requests
        # into an outage window (repro.net.faults.ServiceOutage).
        self._interceptors: list = []

    def add_interceptor(self, interceptor) -> None:
        """Register ``interceptor(request) -> HttpResponse | None``."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor) -> None:
        """Unregister an interceptor previously added."""
        if interceptor in self._interceptors:
            self._interceptors.remove(interceptor)

    def register(self, hostname: str, server: HttpServer) -> None:
        """Register."""
        self._servers[hostname.lower()] = server

    def unregister(self, hostname: str) -> None:
        """Unregister."""
        self._servers.pop(hostname.lower(), None)

    def resolve(self, hostname: str) -> HttpServer | None:
        """Resolve."""
        return self._servers.get(hostname.lower())

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Route one request: interceptors first, then the named server."""
        for interceptor in self._interceptors:
            response = interceptor(request)
            if response is not None:
                return response
        server = self.resolve(request.host)
        if server is None:
            return HttpResponse(502, b"bad gateway: unknown host " + request.host.encode())
        return server.handle_request(request)


class HttpClient:
    """An HTTP client bound to a client identity (IP), optionally proxied.

    The proxy, when set, receives every request *before* name resolution
    — mirroring how the analyzer's peers are configured with a proxy
    client that hands all traffic to the control panel's proxy server.
    """

    def __init__(self, urlspace: UrlSpace, client_ip: str = "0.0.0.0", proxy=None) -> None:
        self.urlspace = urlspace
        self.client_ip = client_ip
        self.proxy = proxy
        self.requests_made = 0
        self.bytes_downloaded = 0
        self.bytes_uploaded = 0

    def request(
        self,
        method: str,
        url: str,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> HttpResponse:
        """Request."""
        request = HttpRequest(method, url, dict(headers or {}), body, self.client_ip)
        self.requests_made += 1
        self.bytes_uploaded += len(body)
        if self.proxy is not None:
            response = self.proxy.handle(request, self.urlspace)
        else:
            response = self.urlspace.dispatch(request)
        self.bytes_downloaded += len(response.body)
        return response

    def get(self, url: str, headers: dict[str, str] | None = None) -> HttpResponse:
        """Get."""
        return self.request("GET", url, headers)

    def post(self, url: str, body: bytes, headers: dict[str, str] | None = None) -> HttpResponse:
        """Post."""
        return self.request("POST", url, headers, body)
