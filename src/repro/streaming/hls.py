"""HLS media playlists (RFC 8216 subset).

The pollution attacks operate on exactly these artifacts: a manifest
(M3U8) tracking TS segments. The generator/parser here covers the tags
the paper's pipeline touches — target duration, media sequence (for live
sliding windows), per-segment EXTINF, and the ENDLIST marker that
distinguishes VOD from live playlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streaming.video import VideoSource
from repro.util.errors import ProtocolError


@dataclass(frozen=True)
class PlaylistEntry:
    """One segment reference in a media playlist."""

    uri: str
    duration: float


@dataclass(frozen=True)
class VariantEntry:
    """One rendition reference in a master playlist."""

    uri: str
    bandwidth: int  # bits per second
    name: str = ""


@dataclass
class MasterPlaylist:
    """A parsed multi-bitrate master playlist."""

    variants: list[VariantEntry] = field(default_factory=list)

    def lowest(self) -> VariantEntry:
        """Lowest."""
        return min(self.variants, key=lambda v: v.bandwidth)

    def best_for(self, bits_per_second: float) -> VariantEntry:
        """Highest rendition sustainable at the given throughput."""
        affordable = [v for v in self.variants if v.bandwidth <= bits_per_second]
        return max(affordable, key=lambda v: v.bandwidth) if affordable else self.lowest()


def generate_master_playlist(variants: list[VariantEntry]) -> str:
    """Render a master playlist (#EXT-X-STREAM-INF per rendition)."""
    lines = ["#EXTM3U", "#EXT-X-VERSION:3"]
    for variant in variants:
        name = f',NAME="{variant.name}"' if variant.name else ""
        lines.append(f"#EXT-X-STREAM-INF:BANDWIDTH={variant.bandwidth}{name}")
        lines.append(variant.uri)
    return "\n".join(lines) + "\n"


def parse_master_playlist(text: str) -> MasterPlaylist:
    """Parse a master playlist."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise ProtocolError("playlist does not start with #EXTM3U")
    master = MasterPlaylist()
    pending: dict | None = None
    for line in lines[1:]:
        if line.startswith("#EXT-X-STREAM-INF:"):
            attributes = line.split(":", 1)[1]
            bandwidth = 0
            name = ""
            for chunk in attributes.split(","):
                if chunk.startswith("BANDWIDTH="):
                    bandwidth = int(chunk.split("=", 1)[1])
                elif chunk.startswith("NAME="):
                    name = chunk.split("=", 1)[1].strip('"')
            pending = {"bandwidth": bandwidth, "name": name}
        elif line.startswith("#"):
            continue
        else:
            if pending is None:
                raise ProtocolError(f"variant uri {line!r} without #EXT-X-STREAM-INF")
            master.variants.append(VariantEntry(line, pending["bandwidth"], pending["name"]))
            pending = None
    if not master.variants:
        raise ProtocolError("master playlist has no variants")
    return master


def is_master_playlist(text: str) -> bool:
    """Is master playlist."""
    return "#EXT-X-STREAM-INF:" in text


@dataclass
class MediaPlaylist:
    """A parsed media playlist."""

    version: int = 3
    target_duration: float = 10.0
    media_sequence: int = 0
    entries: list[PlaylistEntry] = field(default_factory=list)
    endlist: bool = False

    @property
    def is_live(self) -> bool:
        """Is live."""
        return not self.endlist

    def segment_indices(self) -> list[int]:
        """Absolute segment indices covered by this playlist window."""
        return list(range(self.media_sequence, self.media_sequence + len(self.entries)))


def generate_media_playlist(
    video: VideoSource,
    first_index: int = 0,
    window: int | None = None,
    endlist: bool = True,
    uri_prefix: str = "",
) -> str:
    """Render an M3U8 media playlist for ``video``.

    For live streams, pass ``endlist=False`` with a sliding ``window``
    starting at ``first_index`` (which becomes EXT-X-MEDIA-SEQUENCE).
    """
    if window is not None:
        segments = video.segments[first_index : first_index + window]
    else:
        segments = video.segments[first_index:]
    target = max((s.duration for s in segments), default=video.segment_duration)
    lines = [
        "#EXTM3U",
        "#EXT-X-VERSION:3",
        f"#EXT-X-TARGETDURATION:{int(round(target))}",
        f"#EXT-X-MEDIA-SEQUENCE:{first_index}",
    ]
    for segment in segments:
        lines.append(f"#EXTINF:{segment.duration:.3f},")
        lines.append(f"{uri_prefix}{segment.filename}")
    if endlist:
        lines.append("#EXT-X-ENDLIST")
    return "\n".join(lines) + "\n"


def parse_media_playlist(text: str) -> MediaPlaylist:
    """Parse an M3U8 media playlist."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise ProtocolError("playlist does not start with #EXTM3U")
    playlist = MediaPlaylist()
    pending_duration: float | None = None
    for line in lines[1:]:
        if line.startswith("#EXT-X-VERSION:"):
            playlist.version = int(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-TARGETDURATION:"):
            playlist.target_duration = float(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-MEDIA-SEQUENCE:"):
            playlist.media_sequence = int(line.split(":", 1)[1])
        elif line.startswith("#EXTINF:"):
            value = line.split(":", 1)[1].rstrip(",").split(",")[0]
            pending_duration = float(value)
        elif line == "#EXT-X-ENDLIST":
            playlist.endlist = True
        elif line.startswith("#"):
            continue  # unknown tag: tolerated, like real players do
        else:
            if pending_duration is None:
                raise ProtocolError(f"segment uri {line!r} without preceding #EXTINF")
            playlist.entries.append(PlaylistEntry(line, pending_duration))
            pending_duration = None
    return playlist
