"""The experiment harness: registry, structured results, run pipeline.

The paper's PDN analyzer (Fig. 2) is a *harness* — it runs predefined
security tests and emits comparable reports. This package gives the
reproduction the same shape one layer up:

- :mod:`repro.harness.registry` — ``@experiment(...)`` registration
  turning every module under :mod:`repro.experiments` into a named,
  discoverable :class:`ExperimentSpec` (the CLI builds itself from it);
- :mod:`repro.harness.result` — the :class:`Result` protocol all
  experiment results implement: ``render()`` for the paper-style text
  block, ``to_dict()`` for JSON export, and a stable content digest;
- :mod:`repro.harness.manifest` — the :class:`RunRecord` written for
  every execution (seed, params, wall time, events fired, digest);
- :mod:`repro.harness.runner` — the :class:`Runner` executing specs
  sequentially or in a process pool, writing artifacts, and verifying
  replay-from-seed determinism at runtime (``repro verify``);
- :mod:`repro.harness.profile` — event-loop instrumentation sinks
  surfaced by ``--profile``.
"""

from repro.harness.manifest import RunRecord
from repro.harness.profile import EventCounter, SiteProfiler, TraceSink, capture_events
from repro.harness.registry import CliOption, ExperimentSpec, all_specs, experiment, get, load_all
from repro.harness.result import Result, ResultBase, canonical_json, content_digest, to_jsonable
from repro.harness.runner import RunOutcome, Runner, VerifyReport, execute_spec

__all__ = [
    "CliOption",
    "EventCounter",
    "ExperimentSpec",
    "Result",
    "ResultBase",
    "RunOutcome",
    "RunRecord",
    "Runner",
    "SiteProfiler",
    "TraceSink",
    "VerifyReport",
    "all_specs",
    "canonical_json",
    "capture_events",
    "content_digest",
    "execute_spec",
    "experiment",
    "get",
    "load_all",
    "to_jsonable",
]
