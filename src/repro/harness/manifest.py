"""Run manifests: the provenance record written for every execution.

A :class:`RunRecord` captures what would be needed to reproduce (and
trust) one experiment execution: the experiment name, the seed, the
fully-resolved parameters, how long it took on the host clock, how many
simulated events fired, and the content digest of the structured
result. ``repro all --out DIR`` writes one manifest per experiment;
``repro verify`` compares the digests of repeated records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.result import to_jsonable

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


@dataclass
class RunRecord:
    """Provenance for one experiment execution."""

    experiment: str
    seed: int | str
    params: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    wall_seconds: float = 0.0
    events_fired: int = 0
    peak_rss_kb: int = 0
    result_digest: str | None = None
    result_type: str | None = None
    started_at_unix: float | None = None
    #: Experiment-declared provenance (e.g. the chaos fault-plan digest),
    #: collected from the result's ``manifest_extra()`` hook.
    extra: dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @property
    def ok(self) -> bool:
        """True when the execution completed without an exception."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """Serialise to plain JSON types (params via ``to_jsonable``)."""
        return {
            "version": self.version,
            "experiment": self.experiment,
            "seed": self.seed,
            "params": to_jsonable(self.params),
            "status": self.status,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "events_fired": self.events_fired,
            "peak_rss_kb": self.peak_rss_kb,
            "result_digest": self.result_digest,
            "result_type": self.result_type,
            "started_at_unix": self.started_at_unix,
            "extra": to_jsonable(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            experiment=data["experiment"],
            seed=data["seed"],
            params=dict(data.get("params", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
            wall_seconds=data.get("wall_seconds", 0.0),
            events_fired=data.get("events_fired", 0),
            peak_rss_kb=data.get("peak_rss_kb", 0),
            result_digest=data.get("result_digest"),
            result_type=data.get("result_type"),
            started_at_unix=data.get("started_at_unix"),
            extra=dict(data.get("extra", {})),
            version=data.get("version", MANIFEST_VERSION),
        )

    def to_json(self) -> str:
        """Pretty-printed JSON for the on-disk manifest."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: Path | str) -> Path:
        """Write the manifest to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: Path | str) -> "RunRecord":
        """Load a manifest previously written with :meth:`write`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
