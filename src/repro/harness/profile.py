"""Event-loop instrumentation sinks: the simulator's observability seam.

:class:`~repro.net.clock.EventLoop` fires millions of callbacks per
run but, until now, exposed only a total count. The sinks here attach
through ``EventLoop.add_sink`` (class-wide, so every loop an experiment
creates is covered — experiments routinely build several
``Environment`` objects) and observe each fired event:

- :class:`EventCounter` — total events, the figure recorded in every
  :class:`~repro.harness.manifest.RunRecord`;
- :class:`SiteProfiler` — events grouped by *callback site* (module +
  qualified name), surfaced by ``repro <exp> --profile``, with timing-
  wheel counters folded in;
- :class:`WheelStats` — the timing wheel's in-band/overflow totals and
  peak occupancy across every observed loop;
- :class:`TraceSink` — a bounded ``(when, site)`` trace for debugging.

Sinks observe, never mutate: they must not schedule events or touch
simulation state, or replay-from-seed breaks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.net.clock import EventLoop, TimerHandle
from repro.util.tables import render_table


def callsite_of(callback) -> str:
    """A stable label for a callback: ``module.qualname``."""
    module = getattr(callback, "__module__", None) or "?"
    name = getattr(callback, "__qualname__", None) or repr(type(callback).__name__)
    return f"{module}.{name}"


def callback_of(handle) -> object:
    """The fired callback behind a sink's ``handle`` argument.

    Sinks see either a :class:`~repro.net.clock.TimerHandle` or the
    anonymous ``(when, seq, callback, args)`` heap entry
    ``EventLoop.schedule_fast`` pushes for the datagram fast path.
    """
    return handle[2] if type(handle) is tuple else handle.callback


class EventCounter:
    """Counts every event fired by every loop while installed."""

    def __init__(self) -> None:
        self.total = 0

    def record(self, loop: EventLoop, handle: TimerHandle) -> None:
        """Observe one fired event."""
        self.total += 1


class WheelStats:
    """Timing-wheel counters sampled per fired event, across every loop.

    Reads :meth:`EventLoop.wheel_occupancy` and the loop's cumulative
    ``wheel_scheduled`` / ``wheel_overflow`` counters; per-loop last
    snapshots are summed so several loops (experiments routinely build
    more than one ``Environment``) aggregate correctly.
    """

    def __init__(self) -> None:
        self.max_occupancy = 0
        #: Keyed by the observed EventLoop, or by an opaque string for
        #: wheel snapshots absorbed from shard worker processes
        #: (:meth:`absorb_remote`) — both map to the same snapshot shape.
        self._loops: dict[object, tuple[int, int, int, int]] = {}

    def absorb_remote(self, key: str, wheel: dict) -> None:
        """Fold one remote loop's wheel counters into the aggregate.

        Shard worker processes (:mod:`repro.net.shard`) run their loops
        in other address spaces, where class-wide sinks cannot see them;
        the coordinator ships each worker's ``wheel_stats()`` dict home
        and registers it here under a stable string key. Counters sum
        with the locally observed loops, occupancy folds into the max —
        so ``render_wheel_summary`` reports the whole sharded run, not
        the parent's empty wheel. ``occupancy`` in a shipped snapshot is
        the worker's barrier-sampled peak.
        """
        occupancy = wheel.get("occupancy", 0)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        self._loops[key] = (
            wheel.get("scheduled", 0),
            wheel.get("overflow", 0),
            wheel.get("batched", 0),
            wheel.get("batch_drains", 0),
        )

    def record(self, loop: EventLoop, handle: TimerHandle) -> None:
        """Sample the wheel gauges of the loop that just fired."""
        occupancy = loop.wheel_occupancy
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        self._loops[loop] = (
            loop.wheel_scheduled,
            loop.wheel_overflow,
            loop.wheel_batched,
            loop.wheel_batch_drains,
        )

    @property
    def scheduled(self) -> int:
        """Total events that took the wheel's in-band bucket path."""
        return sum(snap[0] for snap in self._loops.values())

    @property
    def overflow(self) -> int:
        """Total events that fell through to the heap."""
        return sum(snap[1] for snap in self._loops.values())

    @property
    def batched(self) -> int:
        """In-band datagrams carried as columnar batch rows."""
        return sum(snap[2] for snap in self._loops.values())

    @property
    def batch_drains(self) -> int:
        """Drain frames entered: ``batched / batch_drains`` is the mean
        datagrams delivered per callback frame."""
        return sum(snap[3] for snap in self._loops.values())

    def to_dict(self) -> dict:
        """Serialise for the JSON output format."""
        return {
            "scheduled": self.scheduled,
            "overflow": self.overflow,
            "batched": self.batched,
            "batch_drains": self.batch_drains,
            "max_occupancy": self.max_occupancy,
        }


def render_wheel_summary(wheel: dict) -> str:
    """One line summarising a :meth:`WheelStats.to_dict` payload."""
    line = (
        f"timing wheel: {wheel['scheduled']:,} in-band, "
        f"{wheel['overflow']:,} heap overflow, "
        f"peak occupancy {wheel['max_occupancy']:,}"
    )
    drains = wheel.get("batch_drains", 0)
    if drains:
        per = wheel["batched"] / drains
        line += (
            f"; batched delivery: {wheel['batched']:,} datagrams over "
            f"{drains:,} drains ({per:.1f}/drain)"
        )
    return line


class SiteProfiler(EventCounter):
    """Per-callback-site event counts, for ``--profile``."""

    def __init__(self) -> None:
        super().__init__()
        self.sites: dict[str, int] = {}
        self.wheel = WheelStats()

    def record(self, loop: EventLoop, handle: TimerHandle) -> None:
        """Observe one fired event and attribute it to its callback site."""
        super().record(loop, handle)
        site = callsite_of(callback_of(handle))
        self.sites[site] = self.sites.get(site, 0) + 1
        self.wheel.record(loop, handle)

    def absorb_remote(self, key: str, wheel: dict) -> None:
        """Fold a shard worker's wheel snapshot into :attr:`wheel`."""
        self.wheel.absorb_remote(key, wheel)

    def top(self, n: int = 15) -> list[tuple[str, int]]:
        """The ``n`` busiest callback sites, busiest first."""
        ranked = sorted(self.sites.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def to_dict(self) -> dict:
        """Serialise for the JSON output format."""
        return {
            "total_events": self.total,
            "sites": dict(sorted(self.sites.items())),
            "wheel": self.wheel.to_dict(),
        }

    def render(self, n: int = 15) -> str:
        """An aligned table of the busiest callback sites."""
        rows = [
            [site, count, f"{count / self.total * 100:.1f}%" if self.total else "-"]
            for site, count in self.top(n)
        ]
        table = render_table(
            ["callback site", "events", "share"],
            rows,
            title=f"event-loop profile ({self.total} events, top {min(n, len(self.sites))} sites)",
        )
        if self.wheel._loops:
            table = f"{table}\n{render_wheel_summary(self.wheel.to_dict())}"
        return table


class TraceSink:
    """A bounded trace of ``(when, site)`` pairs, oldest first."""

    def __init__(self, limit: int = 100_000) -> None:
        self.limit = limit
        self.events: list[tuple[float, str]] = []
        self.dropped = 0

    def record(self, loop: EventLoop, handle: TimerHandle) -> None:
        """Append one fired event to the trace, dropping past the limit."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append((loop.now, callsite_of(callback_of(handle))))


@contextmanager
def capture_events(sink: EventCounter | TraceSink) -> Iterator[EventCounter | TraceSink]:
    """Install ``sink`` on every :class:`EventLoop` for the block's duration."""
    EventLoop.add_sink(sink)
    try:
        yield sink
    finally:
        EventLoop.remove_sink(sink)
