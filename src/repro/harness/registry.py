"""The experiment registry: ``@experiment(...)`` and spec discovery.

Each module under :mod:`repro.experiments` registers its ``run()``
callable with a decorator::

    @experiment("bandwidth", help="Fig. 5: upload growth", order=60)
    def run(seed: int = 55, ...) -> Fig5Result: ...

That registration is the *only* wiring an experiment needs: the CLI
builds its subcommands from :func:`all_specs`, ``repro all`` uses the
spec ``order`` to reproduce the paper's presentation order, and the
runner resolves names back to callables inside worker processes.
Discovery is by import: :func:`load_all` imports every submodule of
:mod:`repro.experiments`, so dropping a new decorated module into that
package is sufficient.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.util.errors import ConfigurationError

EXPERIMENTS_PACKAGE = "repro.experiments"

#: The seed the CLI passes to every experiment unless ``--seed`` is given.
DEFAULT_SEED = 2024


@dataclass(frozen=True)
class CliOption:
    """One extra command-line option an experiment exposes (e.g. ``--days``)."""

    flag: str
    param: str
    type: Callable[[str], Any]
    default: Any
    help: str


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, runner, and parameter sets."""

    name: str
    help: str
    runner: Callable[..., Any]
    paper_ref: str = ""
    order: int = 1000
    defaults: Mapping[str, Any] = field(default_factory=dict)
    full_params: Mapping[str, Any] = field(default_factory=dict)
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    options: tuple[CliOption, ...] = ()

    @property
    def module(self) -> str:
        """The module that registered this spec (for provenance)."""
        return self.runner.__module__

    def resolve_params(
        self,
        *,
        full: bool = False,
        quick: bool = False,
        option_values: Mapping[str, Any] | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Merge the parameter layers into the kwargs for ``runner``.

        Precedence (lowest to highest): spec defaults and declared
        option defaults, quick params, explicitly-passed option values,
        full params (``--full`` is paper scale and wins over a leftover
        ``--days``), then ``--param`` overrides.
        """
        params: dict[str, Any] = dict(self.defaults)
        params.update({opt.param: opt.default for opt in self.options})
        if quick:
            params.update(self.quick_params)
        if option_values:
            params.update(option_values)
        if full:
            params.update(self.full_params)
        if overrides:
            params.update(overrides)
        return params


_REGISTRY: dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry; re-registration must be consistent."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.module != spec.module:
        raise ConfigurationError(
            f"experiment {spec.name!r} registered by both {existing.module} and {spec.module}"
        )
    _REGISTRY[spec.name] = spec  # repro: allow[SHARD001] import-time registration; workers re-import identically
    return spec


def experiment(
    name: str,
    *,
    help: str,
    paper_ref: str = "",
    order: int = 1000,
    defaults: Mapping[str, Any] | None = None,
    full_params: Mapping[str, Any] | None = None,
    quick_params: Mapping[str, Any] | None = None,
    options: tuple[CliOption, ...] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated ``run()`` callable as a named experiment."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        spec = ExperimentSpec(
            name=name,
            help=help,
            runner=fn,
            paper_ref=paper_ref,
            order=order,
            defaults=dict(defaults or {}),
            full_params=dict(full_params or {}),
            quick_params=dict(quick_params or {}),
            options=tuple(options),
        )
        register(spec)
        fn.spec = spec  # type: ignore[attr-defined]
        return fn

    return decorate


def load_all() -> None:
    """Import every :mod:`repro.experiments` submodule (idempotent)."""
    global _LOADED
    if _LOADED:
        return
    package = importlib.import_module(EXPERIMENTS_PACKAGE)
    for info in sorted(pkgutil.iter_modules(package.__path__), key=lambda m: m.name):
        importlib.import_module(f"{EXPERIMENTS_PACKAGE}.{info.name}")
    _LOADED = True


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec, in paper presentation order."""
    load_all()
    return sorted(_REGISTRY.values(), key=lambda s: (s.order, s.name))


def names() -> list[str]:
    """Registered experiment names, in paper presentation order."""
    return [spec.name for spec in all_specs()]


def get(name: str) -> ExperimentSpec:
    """Look up one spec by CLI name."""
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown experiment {name!r} (known: {known})") from None
