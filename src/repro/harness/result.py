"""Structured experiment results: the protocol, JSON export, digests.

Every experiment's result object keeps its hand-written ``render()``
(the paper-style text block) and additionally serialises through
``to_dict()`` to plain JSON types. The canonical JSON encoding of that
dict — sorted keys, no whitespace — is hashed into a *content digest*,
the quantity ``repro verify`` compares across same-seed runs and
``repro all --jobs N`` compares across processes.

:func:`to_jsonable` is deliberately strict about ordering: sets are
sorted before they become lists, so a digest can never depend on hash
iteration order (which varies across processes under PYTHONHASHSEED).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, ClassVar, Protocol, runtime_checkable


@runtime_checkable
class Result(Protocol):
    """What the harness requires of an experiment's return value."""

    def render(self) -> str:
        """The human-readable, paper-style text block."""
        ...  # pragma: no cover - protocol

    def to_dict(self) -> dict:
        """A JSON-serialisable dict carrying every rendered quantity."""
        ...  # pragma: no cover - protocol


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` to plain JSON types, deterministically.

    Dataclasses become dicts (field order), mappings keep insertion
    order with stringified keys, sets are *sorted* into lists, enums
    become their names, bytes hex-encode, and anything exposing
    ``to_dict()`` is asked to serialise itself. Unknown objects fall
    back to ``str()`` so serialisation never raises mid-run.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, bytes):
        return value.hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if hasattr(value, "to_dict"):
            return to_jsonable(value.to_dict())
        return {f.name: to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        converted = [to_jsonable(v) for v in value]
        return sorted(converted, key=lambda item: json.dumps(item, sort_keys=True, default=str))
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return str(value)


def canonical_json(data: Any) -> str:
    """The one true JSON encoding: sorted keys, compact separators."""
    return json.dumps(to_jsonable(data), sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def content_digest(data: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


class ResultBase:
    """Mixin giving dataclass results ``to_dict()`` and a digest.

    The default ``to_dict()`` walks the dataclass fields (minus
    ``_serialize_exclude``) through :func:`to_jsonable`; results holding
    non-serialisable infrastructure (a geo database, a pipeline report)
    exclude those fields and override ``to_dict()`` to export the
    derived quantities their ``render()`` prints instead.
    """

    _serialize_exclude: ClassVar[tuple[str, ...]] = ()

    def to_dict(self) -> dict:
        """Serialise the dataclass fields to plain JSON types."""
        out: dict[str, Any] = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            if field.name in self._serialize_exclude:
                continue
            out[field.name] = to_jsonable(getattr(self, field.name))
        return out

    def content_digest(self) -> str:
        """The stable digest ``repro verify`` compares across runs."""
        return content_digest(self.to_dict())
