"""The run pipeline: execute specs, record manifests, verify determinism.

:func:`execute_spec` is the unit of work — resolve a spec, run it under
an event counter (and optionally a per-site profiler), and package a
picklable :class:`RunOutcome`. :class:`Runner` fans those units out,
either in-process or across a ``ProcessPoolExecutor`` (experiments are
independent and fully seeded, so ``repro all --jobs N`` is
embarrassingly parallel), writes artifacts under ``--out``, and powers
``repro verify``: re-run every experiment at the same seed and fail on
any content-digest mismatch — the replay-from-seed contract reprolint
enforces statically, checked dynamically.

With ``--sanitize`` (or ``REPRO_DETSAN=1``) each execution runs under
DetSan (:mod:`repro.analysis.sanitizer`): wall-clock/global-RNG guards
raise at the offending line, and a dispatch-trace fingerprint rides
back in each :class:`RunOutcome` so ``verify`` can name the *first*
divergent event when digests disagree instead of just the mismatch.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.analysis.sanitizer import TraceSnapshot, first_divergence, sanitized_run
from repro.harness import registry
from repro.harness.manifest import RunRecord
from repro.harness.profile import EventCounter, SiteProfiler, capture_events
from repro.harness.result import canonical_json, content_digest
from repro.util.perf import WallTimer, peak_rss_kb, unix_now
from repro.util.tables import render_table


def detsan_env_enabled() -> bool:
    """True when ``REPRO_DETSAN`` asks for sanitized execution."""
    return os.environ.get("REPRO_DETSAN", "") not in ("", "0")


def pool_map(fn, items: Iterable, jobs: int = 1) -> list:
    """Map ``fn`` over ``items``, optionally across a process pool.

    The harness's one parallelism seam: ``Runner.run`` fans experiment
    specs through it, and the streaming detection driver fans corpus
    shards through it. ``fn`` must be a top-level callable and every
    item picklable. Output order always matches input order, so callers
    reduce over results without caring which path executed — ``jobs=1``
    (or a single item) stays in-process, which keeps nested use inside
    already-pooled workers cheap and sanitizer-friendly.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


@dataclass
class RunOutcome:
    """Everything one execution produced, in picklable form."""

    record: RunRecord
    rendered: str = ""
    result_dict: dict[str, Any] | None = None
    profile: dict[str, Any] | None = None
    #: DetSan dispatch-trace snapshot (``--sanitize`` runs only).
    trace: TraceSnapshot | None = None

    def to_payload(self) -> dict[str, Any]:
        """The JSON document written as the per-experiment result file."""
        return {
            "experiment": self.record.experiment,
            "seed": self.record.seed,
            "result_digest": self.record.result_digest,
            "result": self.result_dict,
            "rendered": self.rendered,
            "profile": self.profile,
        }


@dataclass
class RunRequest:
    """One unit of work for the runner."""

    name: str
    seed: int | str
    params: dict[str, Any] = field(default_factory=dict)


def execute_spec(
    name: str,
    seed: int | str,
    params: Mapping[str, Any] | None = None,
    profile: bool = False,
    sanitize: bool = False,
) -> RunOutcome:
    """Run one registered experiment and return its outcome.

    Top-level (not a closure) so a process pool can ship it to workers;
    the registry re-resolves ``name`` inside the child. Exceptions are
    captured into an ``status="error"`` record rather than raised, so a
    failing experiment cannot take down a whole ``repro all`` run.
    ``sanitize`` (or ``REPRO_DETSAN=1``, which workers inherit through
    the environment) runs the experiment under DetSan; a
    ``DetSanViolation`` lands in the error record with the offending
    file and line.
    """
    spec = registry.get(name)
    params = dict(params or {})
    # Shard-aware experiments opt in by exposing a --shard-workers
    # option; REPRO_SHARD_WORKERS then overrides the worker count from
    # the environment so CI can digest-compare worker counts through
    # `repro verify` without threading a flag into every subcommand.
    # The digest is worker-count-invariant by design (docs/SHARDING.md),
    # so this env knob never changes a result, only how it is computed.
    workers_env = os.environ.get("REPRO_SHARD_WORKERS", "")
    if workers_env and any(option.param == "shard_workers" for option in spec.options):
        params["shard_workers"] = int(workers_env)
    sanitize = sanitize or detsan_env_enabled()
    counter = SiteProfiler() if profile else EventCounter()
    record = RunRecord(experiment=name, seed=seed, params=params, started_at_unix=unix_now())
    rendered = ""
    result_dict: dict[str, Any] | None = None
    trace: TraceSnapshot | None = None
    detsan = sanitized_run() if sanitize else None
    with WallTimer() as timer:
        try:
            with capture_events(counter):
                if detsan is not None:
                    with detsan:
                        result = spec.runner(seed=seed, **params)
                else:
                    result = spec.runner(seed=seed, **params)
            result_dict = result.to_dict()
            record.result_digest = content_digest(result_dict)
            record.result_type = type(result).__qualname__
            extra_hook = getattr(result, "manifest_extra", None)
            if callable(extra_hook):
                record.extra = dict(extra_hook())
            rendered = result.render()
        except Exception as exc:  # noqa: BLE001 - converted into the record
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    if detsan is not None:
        trace = detsan.snapshot()
    record.wall_seconds = timer.elapsed
    record.events_fired = counter.total
    record.peak_rss_kb = peak_rss_kb()
    profile_data = counter.to_dict() if isinstance(counter, SiteProfiler) else None
    return RunOutcome(
        record=record, rendered=rendered, result_dict=result_dict,
        profile=profile_data, trace=trace,
    )


def _execute_request(args: tuple[str, Any, dict, bool, bool]) -> RunOutcome:
    """Pool adapter: unpack one request tuple for :func:`execute_spec`."""
    name, seed, params, profile, sanitize = args
    return execute_spec(name, seed, params, profile, sanitize)


@dataclass
class VerifyReport:
    """The outcome of ``repro verify``: digests per experiment per run."""

    runs: int
    digests: dict[str, list[str | None]] = field(default_factory=dict)
    events: dict[str, list[int]] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    #: DetSan first-divergence reports per experiment (sanitized runs
    #: whose dispatch traces disagreed), rendered for humans.
    divergences: dict[str, str] = field(default_factory=dict)

    def mismatches(self) -> list[str]:
        """Experiments whose repeated runs did not produce one digest.

        A dispatch-trace divergence counts even when the digests agree:
        identical results reached through different event orders are
        exactly the latent nondeterminism ``--sanitize`` exists to
        surface before it reaches a digest.
        """
        out = set(self.divergences)
        for name, digests in self.digests.items():
            if name in self.errors or len(set(digests)) != 1 or digests[0] is None:
                out.add(name)
        return sorted(out)

    @property
    def ok(self) -> bool:
        """True when every experiment replayed to the same digest."""
        return not self.mismatches()

    def render(self) -> str:
        """An aligned pass/fail table over all verified experiments."""
        rows = []
        for name, digests in self.digests.items():
            if name in self.errors:
                status = "ERROR"
            elif name in self.divergences:
                status = "DIVERGED"
            elif len(set(digests)) == 1 and digests[0] is not None:
                status = "ok"
            else:
                status = "MISMATCH"
            shown = ", ".join((d[:12] if d else "-") for d in digests)
            events = "/".join(str(e) for e in self.events.get(name, []))
            rows.append([name, status, shown, events])
        verdict = "deterministic" if self.ok else f"NON-DETERMINISTIC: {', '.join(self.mismatches())}"
        table = render_table(
            ["experiment", "status", f"digests ({self.runs} runs)", "events fired"],
            rows,
            title=f"repro verify — replay-from-seed check ({self.runs} runs each)",
        )
        lines = [table]
        for name in sorted(self.divergences):
            lines.append(f"detsan [{name}]: {self.divergences[name]}")
        lines.append(f"\nverdict: {verdict}")
        return "\n".join(lines)


class Runner:
    """Executes run requests, optionally in parallel, and writes artifacts."""

    def __init__(
        self,
        jobs: int = 1,
        out_dir: Path | str | None = None,
        profile: bool = False,
        sanitize: bool = False,
    ) -> None:
        self.jobs = max(1, jobs)
        self.out_dir = Path(out_dir) if out_dir else None
        self.profile = profile
        self.sanitize = sanitize

    def run(self, requests: Iterable[RunRequest]) -> list[RunOutcome]:
        """Execute every request, preserving input order in the output."""
        requests = list(requests)
        work = [(r.name, r.seed, r.params, self.profile, self.sanitize) for r in requests]
        outcomes = pool_map(_execute_request, work, jobs=self.jobs)
        if self.out_dir is not None:
            for outcome in outcomes:
                self.write_artifacts(outcome)
        return outcomes

    def write_artifacts(self, outcome: RunOutcome) -> tuple[Path, Path]:
        """Write ``<name>.manifest.json`` and ``<name>.result.json``."""
        assert self.out_dir is not None
        self.out_dir.mkdir(parents=True, exist_ok=True)
        name = outcome.record.experiment
        manifest_path = outcome.record.write(self.out_dir / f"{name}.manifest.json")
        result_path = self.out_dir / f"{name}.result.json"
        result_path.write_text(canonical_json(outcome.to_payload()) + "\n")
        return manifest_path, result_path

    def verify(
        self,
        names: Iterable[str],
        seed: int | str,
        runs: int = 2,
        params_for: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> VerifyReport:
        """Re-execute each experiment ``runs`` times; compare digests."""
        names = list(names)
        params_for = params_for or {}
        requests = [
            RunRequest(name, seed, dict(params_for.get(name, {})))
            for _ in range(runs)
            for name in names
        ]
        outcomes = self.run(requests)
        report = VerifyReport(runs=runs)
        traces: dict[str, list[TraceSnapshot]] = {}
        for outcome in outcomes:
            name = outcome.record.experiment
            report.digests.setdefault(name, []).append(outcome.record.result_digest)
            report.events.setdefault(name, []).append(outcome.record.events_fired)
            if outcome.trace is not None:
                traces.setdefault(name, []).append(outcome.trace)
            if not outcome.record.ok and name not in report.errors:
                report.errors[name] = outcome.record.error or "unknown error"
        # Sanitized runs: compare each repeat's dispatch trace against
        # the first and report the first divergent event by site.
        for name, snapshots in sorted(traces.items()):
            for repeat, snapshot in enumerate(snapshots[1:], start=2):
                divergence = first_divergence(snapshots[0], snapshot)
                if divergence is not None:
                    report.divergences[name] = (
                        f"run 1 vs run {repeat}: {divergence.render()}"
                    )
                    break
        return report
