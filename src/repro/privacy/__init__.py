"""Peer-privacy substrate: geolocation, viewer churn, resource accounting.

Supports the §IV-D experiments: the synthetic IPinfo-style geolocation
database (:mod:`repro.privacy.geo`), per-platform viewer churn models
(:mod:`repro.privacy.viewers`), and the Docker-stats-style resource
monitor (:mod:`repro.privacy.resources`).
"""

from repro.privacy.geo import GeoDatabase, GeoInfo
from repro.privacy.resources import ResourceModel, ResourceMonitor
from repro.privacy.viewers import PlatformAudience, ViewerChurn

__all__ = [
    "GeoDatabase",
    "GeoInfo",
    "ResourceModel",
    "ResourceMonitor",
    "PlatformAudience",
    "ViewerChurn",
]
