"""Container resource accounting (the Docker Engine stats analog).

The analyzer monitors each peer container's CPU, memory, and network I/O
once per second (§IV-A "Monitoring PDN activities"). Real numbers come
from a browser doing real crypto; here a :class:`ResourceModel` converts
the browser's activity counters into CPU/memory figures whose *structure*
matches the paper's findings: P2P transfer costs CPU because every byte
is DTLS-encrypted or decrypted, the PDN runtime and its segment cache
cost memory, and IM hashing (the §V-B defense) adds a small increment on
top — reproducing the Fig. 4 (+15% CPU, +10% memory) and Table VI
(1.11→1.14 CPU, 1.21→1.24 memory) ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.net.clock import EventLoop
from repro.util.metrics import TimeSeries


@dataclass(frozen=True)
class ActivitySnapshot:
    """Cumulative activity counters a monitored target exposes."""

    playing: bool = False
    pdn_active: bool = False
    integrity_active: bool = False
    bytes_cdn: int = 0
    bytes_p2p_down: int = 0
    bytes_p2p_up: int = 0
    hash_bytes: int = 0
    cache_bytes: int = 0
    net_in: int = 0
    net_out: int = 0


class Monitorable(Protocol):
    """Monitorable."""
    def resource_activity(self) -> ActivitySnapshot:  # pragma: no cover
        """Resource activity."""
        ...


@dataclass(frozen=True)
class ResourceModel:
    """Cost coefficients mapping activity rates to CPU % and memory MB."""

    cpu_idle: float = 2.0
    cpu_playback: float = 18.0
    cpu_pdn_runtime: float = 0.4  # signaling keepalive, swarm bookkeeping
    cpu_per_cdn_mb: float = 2.0  # plain HTTPS download, per MB/s
    cpu_per_p2p_mb: float = 18.0  # DTLS encrypt/decrypt, per MB/s
    cpu_per_hash_mb: float = 2.5  # IM hashing, per MB/s
    mem_base_mb: float = 180.0
    mem_playback_mb: float = 120.0
    mem_pdn_runtime_mb: float = 22.0
    mem_integrity_runtime_mb: float = 9.0
    mem_per_cache_mb: float = 0.8

    def cpu_percent(self, prev: ActivitySnapshot, cur: ActivitySnapshot, dt: float) -> float:
        """Cpu percent."""
        cdn_rate = (cur.bytes_cdn - prev.bytes_cdn) / dt / 1e6
        p2p_rate = (
            (cur.bytes_p2p_down - prev.bytes_p2p_down)
            + (cur.bytes_p2p_up - prev.bytes_p2p_up)
        ) / dt / 1e6
        hash_rate = (cur.hash_bytes - prev.hash_bytes) / dt / 1e6
        cpu = self.cpu_idle
        if cur.playing:
            cpu += self.cpu_playback
        if cur.pdn_active:
            cpu += self.cpu_pdn_runtime
        cpu += cdn_rate * self.cpu_per_cdn_mb
        cpu += p2p_rate * self.cpu_per_p2p_mb
        cpu += hash_rate * self.cpu_per_hash_mb
        return cpu

    def memory_mb(self, cur: ActivitySnapshot) -> float:
        """Memory mb."""
        mem = self.mem_base_mb
        if cur.playing:
            mem += self.mem_playback_mb
        if cur.pdn_active:
            mem += self.mem_pdn_runtime_mb + cur.cache_bytes / 1e6 * self.mem_per_cache_mb
        if cur.integrity_active:
            mem += self.mem_integrity_runtime_mb
        return mem


@dataclass
class ResourceSample:
    """ResourceSample."""
    at: float
    cpu_percent: float
    memory_mb: float
    net_in_delta: int
    net_out_delta: int


class ResourceMonitor:
    """Samples a target once per ``interval`` simulated seconds."""

    def __init__(
        self,
        loop: EventLoop,
        target: Monitorable,
        model: ResourceModel | None = None,
        interval: float = 1.0,
        name: str = "container",
    ) -> None:
        self.loop = loop
        self.target = target
        self.model = model or ResourceModel()
        self.interval = interval
        self.name = name
        self.samples: list[ResourceSample] = []
        self.cpu = TimeSeries(f"{name}.cpu")
        self.memory = TimeSeries(f"{name}.memory")
        self.net_in = TimeSeries(f"{name}.net_in")
        self.net_out = TimeSeries(f"{name}.net_out")
        self._prev: ActivitySnapshot | None = None
        self._timer = None
        self._running = False

    def start(self) -> None:
        """Start this component."""
        if self._running:
            return
        self._running = True
        self._prev = self.target.resource_activity()
        self._timer = self.loop.call_every(self.interval, self._sample)

    def stop(self) -> None:
        """Stop this component."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()

    def _sample(self) -> None:
        if not self._running:
            return
        cur = self.target.resource_activity()
        prev = self._prev or cur
        cpu = self.model.cpu_percent(prev, cur, self.interval)
        mem = self.model.memory_mb(cur)
        sample = ResourceSample(
            at=self.loop.now,
            cpu_percent=cpu,
            memory_mb=mem,
            net_in_delta=cur.net_in - prev.net_in,
            net_out_delta=cur.net_out - prev.net_out,
        )
        self.samples.append(sample)
        self.cpu.record(sample.at, cpu)
        self.memory.record(sample.at, mem)
        self.net_in.record(sample.at, sample.net_in_delta)
        self.net_out.record(sample.at, sample.net_out_delta)
        self._prev = cur

    # -- summaries -----------------------------------------------------------

    def mean_cpu(self) -> float:
        """Mean cpu."""
        return self.cpu.mean()

    def mean_memory(self) -> float:
        """Mean memory."""
        return self.memory.mean()

    def total_net_in(self) -> float:
        """Total net in."""
        return self.net_in.total()

    def total_net_out(self) -> float:
        """Total net out."""
        return self.net_out.total()
