"""A synthetic IP geolocation database (the IPinfo analog).

The paper's leak analysis only needs coarse WHOIS facts — country, city,
ISP, and the bogon class — so the database maps the first octet of a
public IPv4 address to a country and derives city/ISP deterministically
from the full address. Countries are allocated enough distinct octets to
host the paper's observed diversity (56 countries, 259 cities for the
RT News audience).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IpClass, classify_ip, ip_to_int
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom

# Countries in rough order of PDN-audience relevance. Each gets one or
# more first octets of public IPv4 space. Octets avoid every bogon range
# modeled in repro.net.addresses.
_COUNTRY_OCTETS: dict[str, list[int]] = {
    "CN": [36, 58, 59, 60, 61, 101, 106, 110, 111, 112, 113, 114,
           115, 116, 117, 118, 119, 120, 121, 122, 123],
    "US": [13, 23, 34, 35, 44, 50, 52, 54, 63, 64, 65, 66, 67, 68],
    "GB": [25, 51, 81, 86],
    "CA": [24, 47, 70, 99],
    "RU": [5, 31, 37, 46],
    "DE": [18, 53, 84],
    "FR": [62, 78, 90],
    "ES": [77, 83],
    "IT": [79, 87],
    "BR": [131, 138, 143],
    "MX": [132, 148],
    "AR": [133, 152],
    "PT": [85, 89],
    "NL": [82, 94],
    "SE": [91, 155],
    "NO": [92, 158],
    "FI": [95, 135],
    "DK": [2, 80],
    "PL": [93, 178],
    "UA": [176, 193],
    "TR": [88, 159],
    "IN": [1, 14, 27, 49],
    "JP": [43, 126],
    "KR": [211, 175],
    "ID": [39, 103],
    "TH": [171, 180],
    "VN": [213, 203],
    "MY": [201, 202],
    "PH": [124, 219],
    "SG": [8, 129],
    "AU": [3, 141],
    "NZ": [125, 163],
    "ZA": [41, 105],
    "NG": [102, 154],
    "EG": [156, 197],
    "KE": [165, 196],
    "SA": [188, 212],
    "AE": [185, 217],
    "IL": [147, 199],
    "IR": [187, 151],
    "PK": [182, 221],
    "BD": [209, 45],
    "LK": [222, 218],
    "NP": [223, 210],
    "CL": [146, 186],
    "CO": [181, 190],
    "PE": [179, 200],
    "VE": [150, 191],
    "EC": [157, 184],
    "BO": [166, 215],
    "UY": [164, 167],
    "PY": [169, 214],
    "CR": [189, 216],
    "PA": [168, 170],
    "GT": [173, 174],
    "DO": [207, 162],
    "JM": [72, 74],
    "BE": [57, 109],
    "CH": [145, 160],
    "AT": [128, 130],
    "CZ": [136, 161],
    "HU": [134, 137],
    "RO": [139, 140],
    "BG": [149, 153],
    "GR": [144, 195],
    "IE": [142, 198],
}

_CITIES_PER_COUNTRY = 10
_ISPS_PER_COUNTRY = 6


@dataclass(frozen=True)
class GeoInfo:
    """WHOIS-style facts about one address."""

    ip: str
    ip_class: IpClass
    country: str
    city: str
    isp: str

    @property
    def is_public(self) -> bool:
        """Is public."""
        return self.ip_class is IpClass.PUBLIC


class GeoDatabase:
    """First-octet country allocation with derived city/ISP."""

    def __init__(self) -> None:
        self._octet_to_country: dict[int, str] = {}
        for country, octets in _COUNTRY_OCTETS.items():
            for octet in octets:
                if not 1 <= octet <= 223:
                    continue
                if classify_ip(f"{octet}.1.1.1") is not IpClass.PUBLIC:
                    continue  # never allocate bogon space to a country
                # first writer wins; duplicates in the table are dropped
                self._octet_to_country.setdefault(octet, country)
        self._country_octets: dict[str, list[int]] = {}
        for octet, country in self._octet_to_country.items():
            self._country_octets.setdefault(country, []).append(octet)

    # -- lookup ---------------------------------------------------------

    def lookup(self, ip: str) -> GeoInfo:
        """Lookup."""
        ip_class = classify_ip(ip)
        if ip_class is not IpClass.PUBLIC:
            return GeoInfo(ip, ip_class, country="", city="", isp="")
        value = ip_to_int(ip)
        octet = (value >> 24) & 0xFF
        country = self._octet_to_country.get(octet, "XX")
        city = f"{country}-city-{(value >> 12) % _CITIES_PER_COUNTRY}"
        isp = f"{country}-isp-{(value >> 18) % _ISPS_PER_COUNTRY}"
        return GeoInfo(ip, ip_class, country, city, isp)

    def country_of(self, ip: str) -> str:
        """Country of."""
        return self.lookup(ip).country

    def resolver(self):
        """A ``(ip) -> (country, isp)`` callable for the signaling server."""

        def resolve(ip: str) -> tuple[str, str]:
            """Resolve."""
            info = self.lookup(ip)
            return info.country, info.isp

        return resolve

    # -- generation -------------------------------------------------------

    def countries(self) -> list[str]:
        """Countries."""
        return sorted(self._country_octets)

    def random_ip(self, rand: DeterministicRandom, country: str) -> str:
        """A public address geolocating to ``country``."""
        octets = self._country_octets.get(country)
        if not octets:
            raise ConfigurationError(f"no address space allocated for country {country!r}")
        first = rand.choice(octets)
        return f"{first}.{rand.randint(1, 254)}.{rand.randint(0, 254)}.{rand.randint(1, 254)}"

    def random_bogon(self, rand: DeterministicRandom, kind: IpClass) -> str:
        """An address in one of the bogon classes (NAT-traversal artifacts)."""
        if kind is IpClass.PRIVATE:
            prefix = rand.choice(["10.%d.%d" % (rand.randint(0, 255), rand.randint(0, 255)),
                                  "192.168.%d" % rand.randint(0, 255),
                                  "172.%d.%d" % (rand.randint(16, 31), rand.randint(0, 255))])
            return f"{prefix}.{rand.randint(1, 254)}"
        if kind is IpClass.SHARED_NAT:
            return f"100.{rand.randint(64, 127)}.{rand.randint(0, 254)}.{rand.randint(1, 254)}"
        if kind is IpClass.RESERVED:
            return rand.choice(
                [
                    f"240.{rand.randint(0, 254)}.{rand.randint(0, 254)}.{rand.randint(1, 254)}",
                    f"127.0.0.{rand.randint(1, 254)}",
                    f"169.254.{rand.randint(0, 254)}.{rand.randint(1, 254)}",
                ]
            )
        raise ConfigurationError(f"{kind} is not a bogon class")
