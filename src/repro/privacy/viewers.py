"""Viewer audiences and churn for the in-the-wild leak experiments.

The §IV-D week-long harvest collected 7,740 unique addresses whose
composition reflects each platform's audience: Huya TV ≈98% Chinese
IPs, RT News spread over 56 countries led by the US (35%), Britain
(17%), and Canada (13%), plus a 7.5% tail of bogon artifacts produced by
failed NAT traversal (543 private / 33 shared-NAT / 5 reserved in the
paper). :class:`PlatformAudience` encodes those mixes and
:class:`ViewerChurn` turns them into an arrival/departure process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.addresses import IpClass
from repro.net.clock import EventLoop
from repro.privacy.geo import GeoDatabase
from repro.scenarios.arrivals import LiveArrivals
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom


@dataclass(frozen=True)
class PlatformAudience:
    """Geographic mix and NAT-artifact rates of one platform's viewers."""

    name: str
    country_weights: dict[str, float]
    bogon_rate: float = 0.075
    bogon_split: tuple[tuple[IpClass, float], ...] = (
        (IpClass.PRIVATE, 0.935),
        (IpClass.SHARED_NAT, 0.057),
        (IpClass.RESERVED, 0.008),
    )

    def pick_country(self, rand: DeterministicRandom) -> str:
        """Pick country."""
        return rand.weighted_pick(list(self.country_weights.items()))


def huya_audience() -> PlatformAudience:
    """Huya TV: ~98% of public IPs in China."""
    weights = {"CN": 0.98, "US": 0.005, "SG": 0.004, "MY": 0.004, "CA": 0.003, "JP": 0.004}
    return PlatformAudience("huya", weights)


def rt_news_audience(geo: GeoDatabase) -> PlatformAudience:
    """RT News: 56 countries, US 35% / GB 17% / CA 13% on top."""
    weights = {"US": 0.35, "GB": 0.17, "CA": 0.13}
    rest = [c for c in geo.countries() if c not in weights]
    # Zipf-ish tail over the remaining countries.
    tail_total = 1.0 - sum(weights.values())
    tail_weights = [1.0 / (i + 1) for i in range(len(rest))]
    scale = tail_total / sum(tail_weights)
    for country, w in zip(rest, tail_weights):
        weights[country] = w * scale
    return PlatformAudience("rt-news", weights)


def single_country_audience(name: str, country: str) -> PlatformAudience:
    """For geo-constrained platforms like ok.ru (only 8 Russian IPs seen)."""
    return PlatformAudience(name, {country: 1.0})


@dataclass
class ViewerDescriptor:
    """One synthetic viewer session."""

    viewer_id: int
    observed_ip: str  # the address a harvesting peer would collect
    country: str
    session_length: float
    is_bogon_artifact: bool


class ViewerChurn:
    """Poisson arrivals of viewers with per-platform audience mixes.

    The scheduling itself lives in
    :class:`repro.scenarios.arrivals.LiveArrivals` — this class adds the
    audience sampling (country mix, bogon artifacts, session lengths)
    on top of the generic arrival process.
    """

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        geo: GeoDatabase,
        audience: PlatformAudience,
        arrival_rate_per_min: float = 2.0,
        mean_session_min: float = 12.0,
    ) -> None:
        if arrival_rate_per_min <= 0 or mean_session_min <= 0:
            raise ConfigurationError("rates must be positive")
        self.loop = loop
        self.rand = rand.fork(f"churn:{audience.name}")
        self.geo = geo
        self.audience = audience
        self.arrival_rate_per_sec = arrival_rate_per_min / 60.0
        self.mean_session_sec = mean_session_min * 60.0
        self._counter = 0
        self._live: LiveArrivals | None = None

    def next_viewer(self) -> ViewerDescriptor:
        """Draw one viewer from the audience distribution."""
        self._counter += 1
        country = self.audience.pick_country(self.rand)
        is_artifact = self.rand.random() < self.audience.bogon_rate
        if is_artifact:
            kind = self.rand.weighted_pick(list(self.audience.bogon_split))
            ip = self.geo.random_bogon(self.rand, kind)
        else:
            ip = self.geo.random_ip(self.rand, country)
        session = self.rand.expovariate(1.0 / self.mean_session_sec)
        return ViewerDescriptor(self._counter, ip, country, max(30.0, session), is_artifact)

    @property
    def arrivals(self) -> int:
        """How many viewers have been delivered so far."""
        return self._live.arrivals if self._live is not None else 0

    def start(self, on_arrival: Callable[[ViewerDescriptor], None], until: float | None = None) -> None:
        """Schedule Poisson arrivals; each calls ``on_arrival(viewer)``.

        Delegates to :class:`~repro.scenarios.arrivals.LiveArrivals`, so
        a window that has already closed (``until`` at or before the
        loop's now) schedules nothing — the first arrival used to fire
        unconditionally and overcount at the horizon edge.
        """

        def deliver() -> None:
            """Draw the next viewer and hand it to the subscriber."""
            on_arrival(self.next_viewer())

        self._live = LiveArrivals(
            self.loop, self.rand, self.arrival_rate_per_sec, deliver, until
        )
        self._live.start()

    def stop(self) -> None:
        """Stop this component."""
        if self._live is not None:
            self._live.stop()
