"""Shared utilities for the PDN reproduction library.

This package deliberately contains only small, dependency-free helpers:
error types shared across subsystems, deterministic randomness, id
generation, byte/base64url encoding, lightweight metrics, and plain-text
table rendering used by the benchmark harness.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    NetworkError,
    ProtocolError,
    AuthenticationError,
    IntegrityError,
)
from repro.util.ids import IdFactory
from repro.util.rand import DeterministicRandom
from repro.util.encoding import b64url_decode, b64url_encode
from repro.util.metrics import Counter, Gauge, MetricRegistry, TimeSeries
from repro.util.tables import render_table

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "ProtocolError",
    "AuthenticationError",
    "IntegrityError",
    "IdFactory",
    "DeterministicRandom",
    "b64url_encode",
    "b64url_decode",
    "Counter",
    "Gauge",
    "MetricRegistry",
    "TimeSeries",
    "render_table",
]
