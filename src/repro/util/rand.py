"""Deterministic randomness.

Every stochastic component in the simulator draws from a
:class:`DeterministicRandom` rather than the global :mod:`random` state,
so that experiments are reproducible given a seed and independent
components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A seeded random source with named, independent sub-streams.

    ``fork(name)`` derives a child stream whose seed depends only on the
    parent seed and the name, so adding a new consumer of randomness
    never shifts the values seen by existing consumers.
    """

    def __init__(self, seed: int | str = 0) -> None:
        if isinstance(seed, str):
            seed = int.from_bytes(hashlib.sha256(seed.encode()).digest()[:8], "big")
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def fork(self, name: str) -> "DeterministicRandom":
        """Derive an independent stream keyed by ``name``."""
        material = f"{self.seed}:{name}".encode()
        child_seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        return DeterministicRandom(child_seed)

    # -- thin wrappers over random.Random -------------------------------

    def random(self) -> float:
        """Random."""
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        """Uniform."""
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        """Randint."""
        return self._rng.randint(a, b)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gauss."""
        return self._rng.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        """Expovariate."""
        return self._rng.expovariate(lambd)

    def choice(self, seq: Sequence[T]) -> T:
        """Choice."""
        return self._rng.choice(seq)

    def choices(self, population: Sequence[T], weights: Sequence[float], k: int = 1) -> list[T]:
        """Choices."""
        return self._rng.choices(population, weights=weights, k=k)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample."""
        return self._rng.sample(population, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle."""
        self._rng.shuffle(seq)

    def bytes(self, n: int) -> bytes:
        """Bytes."""
        return self._rng.randbytes(n)

    def weighted_pick(self, table: Iterable[tuple[T, float]]) -> T:
        """Pick one item from ``(item, weight)`` pairs."""
        items, weights = zip(*table)
        return self._rng.choices(items, weights=weights, k=1)[0]
