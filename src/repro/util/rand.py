"""Deterministic randomness.

Every stochastic component in the simulator draws from a
:class:`DeterministicRandom` rather than the global :mod:`random` state,
so that experiments are reproducible given a seed and independent
components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, Iterable, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A seeded random source with named, independent sub-streams.

    ``fork(name)`` derives a child stream whose seed depends only on the
    parent seed and the name, so adding a new consumer of randomness
    never shifts the values seen by existing consumers.
    """

    #: Draw methods bound per-instance in ``__init__`` straight to the
    #: underlying :class:`random.Random` — the declarations here give the
    #: class its typed surface without adding a wrapper frame per draw
    #: (the per-datagram jitter draw is hot at swarm scale).
    random: Callable[[], float]
    uniform: Callable[[float, float], float]
    randint: Callable[[int, int], int]
    gauss: Callable[[float, float], float]
    expovariate: Callable[[float], float]
    choice: Callable[..., Any]
    choices: Callable[..., list]
    sample: Callable[..., list]
    shuffle: Callable[[list], None]

    def __init__(self, seed: int | str = 0) -> None:
        if isinstance(seed, str):
            seed = int.from_bytes(hashlib.sha256(seed.encode()).digest()[:8], "big")
        self.seed = int(seed)
        rng = random.Random(self.seed)
        self._rng = rng
        self.random = rng.random
        self.uniform = rng.uniform
        self.randint = rng.randint
        self.gauss = rng.gauss
        self.expovariate = rng.expovariate
        self.choice = rng.choice
        self.choices = rng.choices
        self.sample = rng.sample
        self.shuffle = rng.shuffle

    def fork(self, name: str) -> "DeterministicRandom":
        """Derive an independent stream keyed by ``name``."""
        material = f"{self.seed}:{name}".encode()
        child_seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        return DeterministicRandom(child_seed)

    def bytes(self, n: int) -> bytes:
        """Bytes."""
        return self._rng.randbytes(n)

    def weighted_pick(self, table: Iterable[tuple[T, float]]) -> T:
        """Pick one item from ``(item, weight)`` pairs."""
        items, weights = zip(*table)
        return self._rng.choices(items, weights=weights, k=1)[0]
