"""Byte-level encoding helpers (base64url, hex dumps, padding)."""

from __future__ import annotations

import base64


def b64url_encode(data: bytes) -> str:
    """Encode bytes as unpadded URL-safe base64 (JWT style)."""
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def b64url_decode(data: str) -> bytes:
    """Decode unpadded URL-safe base64."""
    padding = "=" * (-len(data) % 4)
    return base64.urlsafe_b64decode(data + padding)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def chunk_bytes(data: bytes, size: int) -> list[bytes]:
    """Split ``data`` into chunks of at most ``size`` bytes."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [data[i : i + size] for i in range(0, len(data), size)] or [b""]
