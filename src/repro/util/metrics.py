"""Lightweight metrics primitives used by monitors and experiments.

The Docker-stats analog (:mod:`repro.privacy.resources`) and the traffic
accounting in the CDN/PDN layers record their observations through these
classes so that experiments can aggregate them uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Inc."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that can move up and down."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set."""
        self.value = value

    def add(self, amount: float) -> None:
        """Add."""
        self.value += amount


@dataclass
class TimeSeries:
    """A sampled series of (time, value) points with summary statistics."""

    name: str = ""
    points: list[tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        """Record."""
        self.points.append((t, value))

    def values(self) -> list[float]:
        """Values."""
        return [v for _, v in self.points]

    def mean(self) -> float:
        """Mean."""
        vals = self.values()
        return sum(vals) / len(vals) if vals else 0.0

    def mean_between(self, t0: float, t1: float) -> float:
        """Mean between."""
        vals = [v for t, v in self.points if t0 <= t <= t1]
        return sum(vals) / len(vals) if vals else 0.0

    def max(self) -> float:
        """Max."""
        vals = self.values()
        return max(vals) if vals else 0.0

    def min(self) -> float:
        """Min."""
        vals = self.values()
        return min(vals) if vals else 0.0

    def stddev(self) -> float:
        """Stddev."""
        vals = self.values()
        if len(vals) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in vals) / (len(vals) - 1))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        vals = sorted(self.values())
        if not vals:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        rank = max(1, math.ceil(p / 100 * len(vals)))
        return vals[rank - 1]

    def last(self) -> float:
        """Last."""
        return self.points[-1][1] if self.points else 0.0

    def total(self) -> float:
        """Total."""
        return sum(self.values())


class MetricRegistry:
    """A named collection of counters, gauges, and series."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Counter."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Gauge."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def series(self, name: str) -> TimeSeries:
        """Series."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counter/gauge values and series means."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"counter.{name}"] = c.value
        for name, g in self._gauges.items():
            out[f"gauge.{name}"] = g.value
        for name, s in self._series.items():
            out[f"series.{name}.mean"] = s.mean()
        return out
