"""Deterministic identifier generation.

The simulator needs many unique ids (peers, sessions, transactions,
segments). Using a counter-based factory keeps runs reproducible and ids
human-readable in logs and test failures.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class IdFactory:
    """Produces ids like ``peer-1``, ``peer-2``, ``session-1``, ...

    Each prefix has its own counter, so interleaved allocation of
    different kinds of ids stays stable as code evolves.
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = defaultdict(lambda: itertools.count(1))

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix``."""
        return f"{prefix}-{next(self._counters[prefix])}"

    def peek_count(self, prefix: str) -> int:
        """Number of ids issued so far for ``prefix`` (for diagnostics)."""
        counter = self._counters[prefix]
        # itertools.count cannot be inspected; clone via repr parsing is
        # fragile, so track by issuing nothing: we store counts separately.
        raise NotImplementedError("use CountingIdFactory when counts are needed")


class CountingIdFactory(IdFactory):
    """An :class:`IdFactory` that also tracks how many ids were issued."""

    def __init__(self) -> None:
        super().__init__()
        self._issued: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Next."""
        self._issued[prefix] += 1
        return f"{prefix}-{self._issued[prefix]}"

    def peek_count(self, prefix: str) -> int:
        """Peek count."""
        return self._issued[prefix]
