"""Exception hierarchy shared by every subsystem in the library.

All library-raised exceptions derive from :class:`ReproError` so that
applications can catch one base class at their outermost boundary while
tests assert on the precise subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class NetworkError(ReproError):
    """A simulated network operation could not be completed."""


class AddressInUseError(NetworkError):
    """A host tried to bind a UDP/TCP port that is already bound."""


class HostUnreachableError(NetworkError):
    """A datagram or connection was addressed to an unknown endpoint."""


class ProtocolError(ReproError):
    """A protocol message was malformed or arrived in the wrong state."""


class StunDecodeError(ProtocolError):
    """Raw bytes could not be parsed as a STUN message."""


class DtlsHandshakeError(ProtocolError):
    """The DTLS-like handshake failed (bad fingerprint, wrong flight...)."""


class DtlsRecordError(ProtocolError):
    """A DTLS record failed authentication or decryption."""


class SdpError(ProtocolError):
    """An SDP-like session description was malformed."""


class HttpError(ProtocolError):
    """An HTTP exchange failed. Carries the response status code."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or f"HTTP error {status}")
        self.status = status


class AuthenticationError(ReproError):
    """A peer or customer failed PDN authentication."""


class TokenError(AuthenticationError):
    """An authentication token was invalid, expired, or over-used."""


class IntegrityError(ReproError):
    """Content integrity verification failed (polluted segment, bad SIM)."""


class BlacklistedPeerError(ReproError):
    """A blacklisted peer attempted to interact with the PDN server."""
