"""Plain-text table rendering for benchmark and experiment output.

Every benchmark prints the rows of the paper table it reproduces; this
module renders them in a compact, aligned format so the output can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def fmt_count(value: int | None) -> str:
    """Human-scale count: ``15M`` / ``120K`` / ``-`` for unknown.

    >>> fmt_count(15_000_000), fmt_count(120_000), fmt_count(None)
    ('15M', '120K', '-')
    """
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.0f}M"
    return f"{value / 1_000:.0f}K"


def fmt_mb(num_bytes: float) -> str:
    """Bytes rendered as megabytes to one decimal, e.g. ``12.3MB``."""
    return f"{num_bytes / 1e6:.1f}MB"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2]], title="t"))
    t
    a | b
    --+--
    1 | 2
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render key/value pairs as an aligned two-column block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {_fmt(value)}")
    return "\n".join(lines)
