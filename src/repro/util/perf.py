"""Harness wall-clock timing — the one sanctioned process-clock reader.

Everything inside the simulation takes time from
:attr:`repro.net.clock.EventLoop.now`; reading the host clock there
breaks replay-from-seed and is rejected by reprolint rule DET001. But
the *harness* around the simulation legitimately wants to report how
long an experiment took to compute — that is wall time by definition,
and it never feeds back into any simulated quantity.

This module is the canonical example of the two escape hatches
documented in ``docs/STATIC_ANALYSIS.md``: the line below carries a
``# repro: allow[DET001]`` pragma, and the file is also listed under
``[tool.reprolint.allow]`` in pyproject.toml. New harness-side timing
should call :class:`WallTimer` rather than adding pragmas elsewhere.
"""

from __future__ import annotations

import time


def unix_now() -> float:
    """The host's Unix timestamp, for harness manifests only.

    Never use this inside the simulation — simulated time is
    :attr:`repro.net.clock.EventLoop.now`.
    """
    return time.time()  # repro: allow[DET001] harness-side timestamp


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 if unavailable).

    Harness-side observability only (run manifests, the core hot-path
    bench): like wall time, memory footprint is a property of the host,
    never an input to the simulation.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class WallTimer:
    """Context manager measuring elapsed host time, for harness reports.

    >>> with WallTimer() as timer:
    ...     pass
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._stop: float | None = None

    @staticmethod
    def _read() -> float:
        # Harness wall time, never simulated time — hence the pragma.
        return time.perf_counter()  # repro: allow[DET001] harness-side timing

    def __enter__(self) -> "WallTimer":
        self._start = self._read()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop = self._read()

    @property
    def elapsed(self) -> float:
        """Seconds since entry — frozen at exit, live while inside the block."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else self._read()
        return end - self._start
