#!/usr/bin/env python
"""The §IV-C content pollution attacks, and the §V-B defense.

Three acts:

1. *direct content pollution* — the fake CDN alters every segment; the
   victim's slow-start CDN copies expose the attacker, who gets banned;
2. *video segment pollution* — the fake CDN leaves the slow-start
   window authentic; polluted segments reach the victim's screen;
3. the same attack against a deployment running *peer-assisted
   integrity checking* — the SIM verification rejects the polluted
   bytes and the server blacklists the attacker.

Run:  python examples/pollution_attack_demo.py
"""

from repro.attacks.pollution import DirectContentPollutionTest, VideoSegmentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.pdn.provider import PEER5


def show(title: str, verdict) -> None:
    mark = "ATTACK SUCCEEDED" if verdict.triggered else "attack blocked"
    print(f"\n== {title}: {mark}")
    for key, value in verdict.details.items():
        print(f"   {key} = {value}")


def main() -> None:
    print("Act 1: direct content pollution (pollute everything)")
    env = Environment(seed=10)
    bed = build_test_bed(env, PEER5)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(DirectContentPollutionTest(bed))
    show("direct pollution vs slow start", report.verdicts[0])
    analyzer.teardown()

    print("\nAct 2: video segment pollution (skip the slow-start window)")
    env = Environment(seed=11)
    bed = build_test_bed(env, PEER5)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(VideoSegmentPollutionTest(bed))
    show("segment pollution vs unprotected PDN", report.verdicts[0])
    analyzer.teardown()

    print("\nAct 3: same attack vs peer-assisted integrity checking (§V-B)")
    env = Environment(seed=12)
    bed = build_test_bed(env, PEER5)
    coordinator = IntegrityCoordinator(
        env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=1
    ).install()
    integrity = ClientIntegrity(env.loop, coordinator)
    analyzer = PdnAnalyzer(env)
    original = analyzer.create_peer
    analyzer.create_peer = lambda *a, **kw: original(*a, **{**kw, "integrity": integrity})
    report = analyzer.run_test(VideoSegmentPollutionTest(bed))
    show("segment pollution vs IM checking", report.verdicts[0])
    print(f"   coordinator resolved {coordinator.conflicts_resolved} IM conflicts "
          f"({coordinator.cdn_fetches} CDN fetches)")
    print(f"   blacklisted peers: {sorted(coordinator.peers_blacklisted) or 'none'}")
    analyzer.teardown()


if __name__ == "__main__":
    main()
