#!/usr/bin/env python
"""Run the §III detection pipeline over the synthetic internet.

Builds the seeded corpus (Tranco-style ranking, category engines,
obfuscated keys, geo-gated loaders, private platforms), then runs the
two-stage detector — signature scan + dynamic STUN/DTLS confirmation —
and prints Tables I–IV exactly as the paper reports them.

Run:  python examples/detect_pdn_customers.py
"""

from repro.experiments import detection_tables


def main() -> None:
    print("building corpus and running the detection pipeline "
          "(signature scan + dynamic confirmation)...\n")
    result = detection_tables.run(watch_seconds=30.0)
    print(result.render_all())

    report = result.report
    print("\nunconfirmed potential customers, and why dynamic analysis failed:")
    shown = 0
    for domain in report.potential_sites():
        confirmation = report.site_confirmations.get(domain)
        if confirmation is not None and not confirmation.confirmed and confirmation.failure_hints:
            print(f"  {domain}: {confirmation.failure_hints[0]}")
            shown += 1
            if shown >= 5:
                break
    print("  ... (geolocation gates and subscription walls, as in the paper)")


if __name__ == "__main__":
    main()
