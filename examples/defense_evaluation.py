#!/usr/bin/env python
"""Evaluate all three §V defense families on one deployment.

1. §V-A disposable video-binding tokens — kills free riding.
2. §V-B peer-assisted integrity checking — kills segment pollution
   (Table VI overhead, shortened run).
3. §V-C privacy mitigations — same-country candidate filtering and TURN
   relaying against the IP leak.

Run:  python examples/defense_evaluation.py
"""

from repro.experiments import im_checking, token_defense


def main() -> None:
    print("== §V-A disposable video-binding tokens ==")
    print(token_defense.run().render())

    print("\n== §V-B peer-assisted integrity checking (shortened Table VI run) ==")
    result = im_checking.run(duration=120.0)
    print(result.render())
    delta = result.latency_delta_ms()
    print(f"IM checking latency overhead: {delta:.0f} ms per 3 MB segment "
          f"(paper: ~73 ms, 'less than 80ms')")

    print("\n== §V-C privacy mitigations ==")
    from repro.core.analyzer import PdnAnalyzer
    from repro.core.testbed import build_test_bed
    from repro.defenses.privacy_mitigations import enable_geo_filter
    from repro.environment import Environment
    from repro.pdn.provider import PEER5

    env = Environment(seed=90)
    bed = build_test_bed(env, PEER5, video_segments=6)
    enable_geo_filter(bed.provider, env.geo)
    analyzer = PdnAnalyzer(env)
    peer_us = analyzer.create_peer(name="us", country="US")
    peer_cn = analyzer.create_peer(name="cn", country="CN")
    peer_us.watch_test_stream(bed)
    peer_cn.watch_test_stream(bed)
    analyzer.run(40.0)
    cross_leak = peer_cn.browser.host.public_ip in peer_us.harvested_ips()
    print(f"geo filter: US peer observed the CN peer's address: {cross_leak}")
    analyzer.teardown()

    env2 = Environment(seed=91)
    bed2 = build_test_bed(env2, PEER5, video_segments=6)
    bed2.site.landing.embed.relay_only = True
    analyzer2 = PdnAnalyzer(env2)
    peer_a = analyzer2.create_peer(name="a", country="US")
    peer_a.watch_test_stream(bed2)
    analyzer2.run(6.0)
    peer_b = analyzer2.create_peer(name="b", country="CN")
    session_b = peer_b.watch_test_stream(bed2)
    analyzer2.run(60.0)
    leak = peer_a.browser.host.public_ip in peer_b.harvested_ips()
    print(f"TURN relay: peers exchanged real addresses: {leak}; "
          f"P2P delivered {session_b.player.stats.bytes_from_p2p / 1e6:.1f} MB "
          f"at a relay cost of {env2.turn.relayed_bytes / 1e6:.1f} MB")
    analyzer2.teardown()


if __name__ == "__main__":
    main()
