#!/usr/bin/env python
"""Quickstart: the Fig. 1 traffic flow, end to end.

Builds the paper's controlled test bed (origin -> CDN edge -> test
website with a Peer5-style PDN SDK), lets two viewers watch the same
stream, and shows the PDN doing its job: the second viewer fetches most
segments from the first viewer instead of the CDN, and the provider
bills the customer for the P2P traffic.

Run:  python examples/quickstart.py
"""

from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.web.browser import Browser


def main() -> None:
    env = Environment(seed=1)
    bed = build_test_bed(
        env, PEER5, video_segments=10, segment_seconds=4.0, segment_bytes=250_000
    )
    print(f"test bed ready: https://{bed.site.domain}/ streaming {bed.video_url}")
    print(f"PDN provider: {bed.provider.profile.name}, API key: {bed.api_key}")

    # Viewer 1 opens the page; the embedded SDK joins the PDN swarm.
    alice = Browser(env, "alice", country="US")
    session_a = alice.open(f"https://{bed.site.domain}/")
    print(f"\nalice joined PDN: {session_a.pdn_loaded}")
    env.run(8.0)

    # Viewer 2 arrives a bit later and leeches from viewer 1.
    bob = Browser(env, "bob", country="US")
    session_b = bob.open(f"https://{bed.site.domain}/")
    print(f"bob joined PDN:   {session_b.pdn_loaded}")
    env.run(60.0)

    for name, session in (("alice", session_a), ("bob", session_b)):
        stats = session.player.stats
        print(
            f"\n{name}: played {len(stats.played)} segments "
            f"(CDN {stats.bytes_from_cdn / 1e6:.2f} MB, "
            f"P2P {stats.bytes_from_p2p / 1e6:.2f} MB, "
            f"p2p ratio {stats.p2p_ratio * 100:.0f}%)"
        )
        authentic = [s.digest for s in bed.video.segments]
        print(f"{name}: content authentic: {stats.played_digests() == authentic}")

    account = bed.provider.billing.account(bed.customer_id)
    print(
        f"\nprovider billed {bed.customer_id}: {account.p2p_bytes / 1e6:.2f} MB "
        f"of P2P traffic (${account.cost:.6f} at Peer5 pricing)"
    )
    print(f"CDN served {bed.cdn.bytes_served / 1e6:.2f} MB (cost ${bed.cdn.traffic_cost:.6f})")
    saved = session_b.player.stats.p2p_ratio
    print(f"bandwidth the PDN offloaded for bob's session: {saved * 100:.0f}%")


if __name__ == "__main__":
    main()
