#!/usr/bin/env python
"""Service free riding (§IV-B) and the disposable-token defense (§V-A).

1. Steal a victim's static API key straight out of their page HTML.
2. Cross-domain attack: use it on the attacker's own streaming site —
   works when no allowlist is configured (the Peer5/Streamroot default).
3. Domain-spoofing attack: rewrite Origin/Referer through a proxy —
   works against every provider, allowlist or not.
4. Deploy the video-binding disposable token defense and watch the same
   attacks die.

Run:  python examples/free_riding_demo.py
"""

from repro.attacks.free_riding import ApiKeyProbe, CrossDomainAttackTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.tokens import TokenIssuer, TokenValidator
from repro.detection.signatures import extract_api_keys
from repro.environment import Environment
from repro.pdn.provider import PEER5, VIBLAST
from repro.streaming.http import HttpClient


def main() -> None:
    env = Environment(seed=20)
    bed = build_test_bed(env, PEER5)

    # Step 1: the key sits in the victim's HTML, one regex away.
    html = HttpClient(env.urlspace).get(f"https://{bed.site.domain}/").body.decode()
    stolen = extract_api_keys(html)
    print(f"scraped {bed.site.domain} and extracted API key(s): {stolen}")
    assert bed.api_key in stolen

    # Step 2: cross-domain free riding on the attacker's own site.
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(CrossDomainAttackTest(bed, watch=60.0))
    verdict = report.verdicts[0]
    print(f"\ncross-domain attack succeeded: {verdict.triggered}")
    print(f"  P2P bytes generated on the victim's subscription: "
          f"{verdict.details['p2p_bytes_generated']}")
    print(f"  extra bytes billed to the victim: "
          f"{verdict.details['victim_billed_extra_bytes']}")
    analyzer.teardown()

    # Step 3: Viblast forces an allowlist; spoofing sails through anyway.
    env2 = Environment(seed=21)
    bed2 = build_test_bed(env2, VIBLAST)
    probe = ApiKeyProbe(env2, bed2.provider)
    plain_ok, plain_reason = probe.probe(bed2.api_key)
    spoof_ok, _ = probe.probe(bed2.api_key, spoof_domain=bed2.site.domain)
    print(f"\nViblast (allowlist required): cross-domain join -> {plain_ok} ({plain_reason})")
    print(f"Viblast with spoofed Origin header      -> {spoof_ok}")

    # Step 4: the §V-A defense.
    env3 = Environment(seed=22)
    bed3 = build_test_bed(env3, PEER5)
    secret = env3.rand.fork("secret").bytes(32)
    validator = TokenValidator(clock=lambda: env3.loop.now)
    validator.register_customer(bed3.customer_id, secret)
    bed3.provider.token_defense = validator
    issuer = TokenIssuer(bed3.customer_id, secret, clock=lambda: env3.loop.now)
    bed3.site.landing.embed.token_issuer = issuer

    from repro.web.browser import Browser

    legit = Browser(env3, "legit").open(f"https://{bed3.site.domain}/")
    print(f"\nwith token defense enabled:")
    print(f"  legitimate viewer joins: {legit.pdn_loaded}")
    stolen_token = issuer.issue([bed3.video_url])
    probe3 = ApiKeyProbe(env3, bed3.provider)
    attack_ok, reason = probe3.probe(stolen_token)
    print(f"  stolen token on the attacker's own stream: {attack_ok} ({reason})")


if __name__ == "__main__":
    main()
