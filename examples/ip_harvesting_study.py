#!/usr/bin/env python
"""The §IV-D in-the-wild IP harvest, and the §V-C mitigations.

Parks a collecting peer in a Huya-style and an RT-News-style live
channel (two hours a day for a simulated week), harvests candidate
disclosures, and reports the same statistics the paper does: unique
addresses, bogon artifact breakdown, and coarse geography. Then shows
what the same-country geo filter and TURN relaying would have left the
harvester.

Run:  python examples/ip_harvesting_study.py
      python examples/ip_harvesting_study.py --days 1    (quick look)
"""

import argparse

from repro.experiments import ip_leak_wild


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=7.0, help="harvest duration")
    args = parser.parse_args()

    print(f"harvesting for {args.days:g} simulated day(s), 2 hours per day...\n")
    result = ip_leak_wild.run(days=args.days)
    print(result.render())

    print("\n§V-C mitigation summary:")
    huya = result.platforms["huya.com"]
    rt = result.platforms["rt-news-app"]
    print(
        f"  same-country candidate filter: a US observer would still see "
        f"{rt.same_country_share(result.geo) * 100:.0f}% of RT News leaks "
        f"(paper: 35%) and {huya.same_country_share(result.geo) * 100:.0f}% "
        f"of Huya leaks (paper: none)"
    )
    print("  TURN relaying removes the leak entirely — see "
          "benchmarks/bench_ablation_turn.py for the bandwidth bill.")


if __name__ == "__main__":
    main()
