#!/usr/bin/env python
"""Adaptive multi-bitrate streaming over the PDN.

Publishes a 3-rendition ladder (360p/720p/1080p), points the PDN embed
at the master playlist, and lets two viewers watch. Each player starts
conservative and climbs the ladder; the PDN shares segments strictly
within renditions — the (rendition, index) content keys mean a 720p
viewer never receives 360p bytes.

Run:  python examples/abr_streaming.py
"""

from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5, PdnProvider
from repro.streaming.cdn import CdnEdge, OriginServer
from repro.streaming.video import make_multi_bitrate_video
from repro.web.browser import Browser
from repro.web.page import PdnEmbed, WebPage, Website


def main() -> None:
    env = Environment(seed=77)
    origin = OriginServer(env.loop)
    cdn = CdnEdge(origin)
    env.urlspace.register(origin.hostname, origin)
    env.urlspace.register(cdn.hostname, cdn)

    renditions = make_multi_bitrate_video(
        "premiere", num_segments=12, segment_duration=3.0,
        bitrates_kbps={"360p": 100, "720p": 300, "1080p": 600},
    )
    origin.add_vod_renditions("premiere", renditions)
    master_url = f"https://{cdn.hostname}/vod/premiere/master.m3u8"
    print("published ladder:", ", ".join(sorted(renditions)))

    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("cinema.example.com", None, ClientPolicy())
    site = Website("cinema.example.com", category="video")
    site.add_page(WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, master_url)))
    env.urlspace.register(site.domain, site)

    alice = Browser(env, "alice")
    session_a = alice.open(f"https://{site.domain}/")
    env.run(8.0)
    bob = Browser(env, "bob")
    session_b = bob.open(f"https://{site.domain}/")
    env.run(90.0)

    for name, session in (("alice", session_a), ("bob", session_b)):
        player = session.player
        ladder = " -> ".join(rendition for _, rendition in player.rendition_switches)
        stats = player.stats
        print(f"\n{name}: rendition path {ladder}")
        print(f"{name}: played {len(stats.played)} segments, "
              f"P2P {stats.bytes_from_p2p / 1e6:.2f} MB / "
              f"CDN {stats.bytes_from_cdn / 1e6:.2f} MB, stalls {stats.stalls}")
        # prove rendition integrity: every digest matches its exact index
        for played in stats.played:
            candidates = {v.segments[played.index].digest for v in renditions.values()}
            assert played.digest in candidates
    print("\nrendition integrity verified: no cross-rendition or cross-index bytes")


if __name__ == "__main__":
    main()
