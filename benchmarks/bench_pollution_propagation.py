"""Swarm-scale pollution propagation (§IV-C impact argument)."""

from conftest import run_once

from repro.experiments import pollution_propagation


def test_pollution_propagation(benchmark, save_result):
    result = run_once(benchmark, pollution_propagation.run, seed=808, viewers=12)
    save_result("pollution_propagation", result.render())

    # The paper cites pollution reaching 47% of viewers in the initial
    # stage of a live swarm; a sustained single polluter in a small VOD
    # swarm reaches at least that.
    assert result.infection_rate >= 0.47
    # Most of the damage is *secondary*: benign peers re-serving polluted
    # segments they cached — why one polluter "can easily impact millions".
    assert result.secondary_serves > 0
    assert result.attacker_direct_serves > 0
    assert result.polluted_segments_played > result.attacker_direct_serves
