"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures (or an
ablation), times the run via pytest-benchmark, asserts the headline
shape, and archives the rendered rows under ``benchmarks/results/`` so
the output can be compared with EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write one rendered artifact to benchmarks/results/<name>.txt."""

    def save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
