"""§V-A: the disposable video-binding token defense (283-byte JWT)."""

from conftest import run_once

from repro.experiments import token_defense


def test_token_defense(benchmark, save_result):
    result = run_once(benchmark, token_defense.run, seed=33)
    save_result("token_defense", result.render())

    assert result.listing1_bytes == 283  # the paper's exact figure
    assert result.legit_join_ok
    assert result.stolen_token_own_video_rejected
    assert result.replay_rejected
    assert result.expired_rejected
    assert result.defense_effective
