"""Table IV: the 10 confirmed private PDN services (plus relay platforms)."""

from conftest import run_once

from repro.experiments import detection_tables
from repro.web.corpus import PRIVATE_SERVICES


def test_table4_private_services(benchmark, save_result):
    result = run_once(benchmark, detection_tables.run, seed=2027, watch_seconds=30.0)
    save_result("table4_private", result.render_table4())

    rows = result.table4_rows()
    assert len([r for r in rows if r[3] == "confirmed"]) == len(PRIVATE_SERVICES) == 10
    statuses = {row[0]: row[3] for row in rows}
    for domain in ("bilibili.com", "v.qq.com", "huya.com", "mgtv.com"):
        assert statuses[domain] == "confirmed"
    # the two adult platforms are detected as WebRTC-relaying, not PDN
    assert set(result.report.relay_sites) == {"xhamsterlive.com", "stripchat.com"}
