"""§IV-B in-the-wild key study: 44 extracted / 40 valid / 11 vulnerable."""

from conftest import run_once

from repro.experiments import free_riding_wild


def test_free_riding_in_the_wild(benchmark, save_result):
    result = run_once(benchmark, free_riding_wild.run, seed=77)
    save_result("free_riding_keys", result.render())

    assert result.extracted == 44
    assert result.valid == 40
    assert result.expired == 4
    assert result.cross_domain_vulnerable("peer5") == (11, 36)
    assert result.cross_domain_vulnerable("streamroot") == (0, 1)
    assert result.cross_domain_vulnerable("viblast") == (0, 3)
    assert result.spoofing_vulnerable() == (40, 40)
