"""Ablation: geo-filter scope vs leak volume (§V-C heuristic mitigation).

Runs the RT-News-style harvest for one day under three candidate-
disclosure policies: unrestricted, same-country, same-ISP. Leak volume
to a US observer drops with each tightening; the residual same-country
leak is the paper's "35% of RT News IPs" observation.
"""

from conftest import run_once

from repro.environment import Environment
from repro.experiments.ip_leak_wild import _harvest_platform
from repro.pdn.scheduler import GeoFilterMode
from repro.privacy.viewers import rt_news_audience
from repro.util.tables import render_table


def run_point(mode: GeoFilterMode):
    env = Environment(seed=f"geo-ablation:{mode.value}")
    leak = _harvest_platform(
        env, "rt-ablation", False, rt_news_audience(env.geo),
        arrival_rate_per_min=1.0, observer_country="US", geo_mode=mode,
        days=1.0, window_hours=2.0,
    )
    return mode, leak, env.geo


def sweep():
    return [run_point(m) for m in (GeoFilterMode.NONE, GeoFilterMode.SAME_COUNTRY, GeoFilterMode.SAME_ISP)]


def test_ablation_geo_filter(benchmark, save_result):
    points = run_once(benchmark, sweep)
    rows = []
    collected = {}
    for mode, leak, geo in points:
        countries = leak.country_distribution(geo)
        rows.append([mode.value, leak.total, len(countries)])
        collected[mode] = leak.total
    save_result(
        "ablation_geo_filter",
        render_table(
            ["candidate filter", "unique IPs harvested", "countries"],
            rows,
            title="Ablation: geo-filter scope vs IP-leak volume (US observer, RT-style audience)",
        ),
    )
    assert collected[GeoFilterMode.NONE] > collected[GeoFilterMode.SAME_COUNTRY]
    assert collected[GeoFilterMode.SAME_COUNTRY] >= collected[GeoFilterMode.SAME_ISP]
    # Same-country leaves roughly the US share of the audience (~35%).
    ratio = collected[GeoFilterMode.SAME_COUNTRY] / collected[GeoFilterMode.NONE]
    assert 0.15 <= ratio <= 0.55
