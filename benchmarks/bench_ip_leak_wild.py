"""§IV-D in-the-wild IP leak: the week-long harvest."""

from conftest import run_once

from repro.experiments import ip_leak_wild


def test_ip_leak_in_the_wild(benchmark, save_result):
    result = run_once(benchmark, ip_leak_wild.run, seed=99, days=7.0)
    save_result("ip_leak_wild", result.render())

    huya = result.platforms["huya.com"]
    rt = result.platforms["rt-news-app"]
    okru = result.platforms["ok.ru"]

    # Scale: thousands of addresses, dominated by Huya (paper: 7,055/685).
    assert 5_000 <= huya.total <= 9_000
    assert 450 <= rt.total <= 950
    assert okru.total <= 30  # paper: 8 Russian IPs
    # Public/bogon split: ~92.5% public, private >> shared-NAT >> reserved.
    total_public = sum(len(p.public_ips()) for p in result.platforms.values())
    assert 0.88 <= total_public / result.total_unique <= 0.97
    split = {"private": 0, "shared_nat": 0, "reserved": 0}
    for platform in result.platforms.values():
        for key, value in platform.bogon_breakdown().items():
            split[key] += value
    assert split["private"] > split["shared_nat"] > split["reserved"]
    # Geography.
    huya_dist = huya.country_distribution(result.geo)
    assert huya_dist["CN"] >= 0.95  # paper: 98%
    rt_dist = rt.country_distribution(result.geo)
    assert list(rt_dist)[0] == "US" and rt_dist["US"] > 0.25  # paper: 35%
    assert rt_dist.get("GB", 0) > 0.10 and rt_dist.get("CA", 0) > 0.08
    assert len(rt_dist) >= 40  # paper: 56 countries
    assert rt.cities(result.geo) >= 150  # paper: 259 cities
    # §V-C: the same-country filter would cut RT leaks to ~1/3, Huya to ~0.
    assert 0.25 <= rt.same_country_share(result.geo) <= 0.45
    assert huya.same_country_share(result.geo) <= 0.03
