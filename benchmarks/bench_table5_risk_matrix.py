"""Table V: the full security & privacy risk matrix."""

from conftest import run_once

from repro.experiments import risk_matrix


def test_table5_risk_matrix(benchmark, save_result):
    result = run_once(benchmark, risk_matrix.run, seed=5150, quick=True)
    save_result("table5_risk_matrix", result.render())

    cells = result.cells
    # Peer authentication
    assert cells["cross_domain"]["peer5"] == "11/36"
    assert cells["cross_domain"]["streamroot"] == "0/1"
    assert cells["cross_domain"]["viblast"] == "0/3"
    assert cells["cross_domain"]["private"] == "vuln"  # Mango-TV hooked SDK
    for provider in ("peer5", "streamroot", "viblast", "private"):
        assert cells["domain_spoofing"][provider] == "vuln"
    # Content integrity
    for provider in ("peer5", "streamroot", "viblast", "private"):
        assert cells["direct_pollution"][provider] == "safe"
    for provider in ("peer5", "streamroot", "viblast"):
        assert cells["segment_pollution"][provider] == "vuln"
    assert cells["segment_pollution"]["private"] == "blocked (DRM)"
    # Peer privacy
    for provider in ("peer5", "streamroot", "viblast", "private"):
        assert cells["ip_leak"][provider] == "vuln"
        assert cells["resource_squatting"][provider] == "vuln"
