"""Ablation: slow-start prefetch depth vs direct-pollution detectability.

The slow start is the only thing standing between PDNs and *direct*
content pollution (§IV-C). This sweep removes and deepens it: with no
CDN-verified window the direct attack succeeds; any window >= 1 segment
exposes the attacker's inconsistent announcements.
"""

import dataclasses

from conftest import run_once

from repro.attacks.pollution import DirectContentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.util.tables import render_table


def sweep(depths=(0, 1, 2, 3)):
    rows = []
    for depth in depths:
        profile = dataclasses.replace(PEER5, slow_start_segments=depth)
        env = Environment(seed=1000 + depth)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(DirectContentPollutionTest(bed, watch=80.0))
        verdict = report.verdicts[0]
        rows.append(
            [
                depth,
                "SUCCEEDED" if verdict.triggered else "blocked",
                verdict.details["polluted_played"],
                verdict.details["attacker_detected_and_banned"],
            ]
        )
        analyzer.teardown()
    return rows


def test_ablation_slow_start(benchmark, save_result):
    rows = run_once(benchmark, sweep)
    save_result(
        "ablation_slow_start",
        render_table(
            ["slow-start segments", "direct pollution", "polluted played", "attacker banned"],
            rows,
            title="Ablation: slow-start depth vs direct content pollution",
        ),
    )
    by_depth = {row[0]: row for row in rows}
    assert by_depth[0][1] == "SUCCEEDED"  # no verified window -> attack lands
    for depth in (1, 2, 3):
        assert by_depth[depth][1] == "blocked"
