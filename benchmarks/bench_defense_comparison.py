"""§V-B defense comparison: CDN-distributed hashes vs peer-assisted IM.

The paper's argument for its design: prior defenses (and the vendors'
premium plugins) distribute integrity attributes through the CDN, so
every viewer pays extra CDN bytes; the peer-assisted mechanism costs the
CDN nothing unless a conflict must be resolved. Both block segment
pollution — the difference is who pays.
"""

from conftest import run_once

from repro.attacks.pollution import VideoSegmentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.hash_manifest import ClientHashManifest, install_hash_manifest
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.util.tables import render_table


def run_scheme(seed: int, scheme: str):
    env = Environment(seed=seed)
    bed = build_test_bed(env, PEER5)
    video_bytes = bed.video.total_bytes
    integrity = None
    coordinator = None
    if scheme == "hash-manifest":
        install_hash_manifest(bed.origin, bed.video, b"signing-key")
        integrity = ClientHashManifest()
    elif scheme == "peer-assisted-im":
        coordinator = IntegrityCoordinator(
            env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=1
        ).install()
        integrity = ClientIntegrity(env.loop, coordinator)

    analyzer = PdnAnalyzer(env)
    original = analyzer.create_peer
    analyzer.create_peer = lambda *a, **kw: original(*a, **{**kw, "integrity": integrity})
    report = analyzer.run_test(VideoSegmentPollutionTest(bed))
    blocked = not report.verdicts[0].triggered
    analyzer.teardown()
    return {
        "scheme": scheme,
        "pollution_blocked": blocked,
        "cdn_bytes_served": bed.cdn.bytes_served,
        "server_conflict_fetches": coordinator.cdn_fetches if coordinator else 0,
        "video_bytes": video_bytes,
    }


def sweep():
    return [
        run_scheme(7001, "none"),
        run_scheme(7002, "hash-manifest"),
        run_scheme(7003, "peer-assisted-im"),
    ]


def test_defense_comparison(benchmark, save_result):
    points = run_once(benchmark, sweep)
    save_result(
        "defense_comparison",
        render_table(
            ["scheme", "pollution blocked", "CDN bytes served", "server conflict fetches"],
            [[p["scheme"], p["pollution_blocked"], p["cdn_bytes_served"],
              p["server_conflict_fetches"]] for p in points],
            title="§V-B: who pays for integrity (1 attacker + 1 victim scenario)",
        ),
    )
    none, manifest, im = points
    assert not none["pollution_blocked"]
    assert manifest["pollution_blocked"]
    assert im["pollution_blocked"]
    # The manifest scheme serves strictly more CDN bytes than no-defense
    # playback needs (every viewer fetches the attribute object).
    assert manifest["cdn_bytes_served"] > none["cdn_bytes_served"]
    # Peer-assisted IM's only extra CDN traffic is conflict resolution.
    assert im["server_conflict_fetches"] <= 12
