"""Core hot-path benchmark: EventLoop scheduling + the datagram plane.

Unlike the other benchmarks (which regenerate one of the paper's tables),
this one measures the *simulator core itself* at swarm scale: raw
events/sec through :class:`~repro.net.clock.EventLoop` and datagrams/sec
through :meth:`~repro.net.network.Network.send_datagram`, at 1k/10k/100k
synthetic viewers, plus peak RSS. Results are written to
``benchmarks/results/BENCH_core.json`` so the perf-regression CI job can
compare a fresh smoke run against the committed baseline.

Run as a script (this is what CI does)::

    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --smoke \
        --check benchmarks/results/BENCH_core.json --no-write

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_core_hotpath.py

The traffic pattern is fully seeded (DeterministicRandom), so two runs
on the same tree do identical work — only the wall clock differs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.net.capture import TrafficCapture
from repro.net.clock import EventLoop
from repro.net.network import Network
from repro.net.shard import SwarmWorkload, run_workload
from repro.util.perf import WallTimer, peak_rss_kb
from repro.util.rand import DeterministicRandom

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_core.json"

#: Scenario definitions: (viewers, datagrams) per swarm scenario. The
#: 100k swarm pushes one million datagrams through the data plane.
SWARM_SCENARIOS = {
    "swarm_1k": (1_000, 50_000),
    "swarm_10k": (10_000, 200_000),
    "swarm_100k": (100_000, 1_000_000),
}
#: Sharded-swarm scenarios: (viewers, datagrams, worker ladder). Each
#: runs the same :class:`~repro.net.shard.SwarmWorkload` at every rung
#: of the ladder, asserts the K-invariant digest matches (the PDES
#: correctness oracle running inside the bench), and records per-rung
#: wall clock so the workers-N-vs-1 speedup lands in the baseline.
#: ``swarm_1m`` is the ROADMAP scale target: one million viewers.
SHARD_SCENARIOS = {
    "swarm_1k_shard": (1_000, 50_000, (1, 2)),
    "swarm_100k_shard": (100_000, 1_000_000, (1, 4)),
    "swarm_1m": (1_000_000, 2_000_000, (1, 4)),
}
SMOKE_SCENARIOS = ("events_loop", "swarm_1k", "swarm_1k_shard")
#: Every runnable scenario, in report order — the vocabulary for
#: ``--scenarios`` (e.g. the CI perf job's targeted swarm_100k run).
ALL_SCENARIOS = ("events_loop", "swarm_1k", "swarm_10k", "swarm_100k",
                 "swarm_10k_capture", "swarm_10k_flash", "swarm_1k_shard",
                 "swarm_100k_shard", "swarm_1m")
REGIONS = ("us", "eu", "asia", "sa")

_PAYLOAD = b"\x00" * 200  # one shared segment-chunk-sized datagram body


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def bench_event_loop(n_events: int = 100_000) -> dict:
    """Pure scheduler throughput: schedule, cancel 10%, drain.

    The delay pattern is drawn outside the timed section so the wall
    clock covers only schedule/cancel/dispatch, not the generator.
    """
    loop = EventLoop()
    rand = DeterministicRandom("bench-loop")
    delays = [rand.uniform(0.0, 60.0) for _ in range(n_events)]
    sink: list[float] = []
    with WallTimer() as timer:
        handles = [loop.schedule(delay, sink.append, 0.0) for delay in delays]
        for handle in handles[:: 10]:  # every 10th timer is cancelled
            handle.cancel()
        loop.run_all(max_events=n_events + 1)
    fired = loop.events_fired
    return {
        "events_fired": fired,
        "wall_seconds": timer.elapsed,
        "events_per_sec": fired / timer.elapsed if timer.elapsed else 0.0,
    }


def build_swarm(viewers: int) -> tuple[Network, list]:
    """A synthetic swarm: ``viewers`` public hosts, one bound socket each."""
    net = Network(rand=DeterministicRandom("bench-swarm"))
    hosts = []
    for i in range(viewers):
        host = net.add_host(f"v{i}", region=REGIONS[i % len(REGIONS)])
        host.bind_udp(4000)
        hosts.append(host)
    return net, hosts


def bench_swarm(viewers: int, datagrams: int, capture: bool = False) -> dict:
    """Datagram-plane throughput across a ``viewers``-host swarm.

    Each host sends to a seeded pseudo-random neighbor; the loop drains
    in waves so the heap stays at realistic in-flight depths instead of
    holding every datagram at once.
    """
    net, hosts = build_swarm(viewers)
    if capture:
        net.add_capture(TrafficCapture("bench-tap"))
    rand = DeterministicRandom("bench-traffic")
    n = len(hosts)
    # Traffic pattern fully materialised outside the timer — sender and
    # destination per datagram — so the wall clock covers the
    # simulator's send/deliver path, not the generator or index math.
    sockets = [host.sockets[4000] for host in hosts]
    endpoints = [sock.endpoint for sock in sockets]
    senders = [sockets[k % n] for k in range(datagrams)]
    dests = [endpoints[rand.randint(0, n - 1)] for _ in range(datagrams)]
    wave = max(1, min(datagrams, 10 * n))
    sent = 0
    payload = _PAYLOAD
    with WallTimer() as timer:
        while sent < datagrams:
            batch = min(wave, datagrams - sent)
            for sock, dst in zip(senders[sent:sent + batch],
                                 dests[sent:sent + batch]):
                sock.send(dst, payload)
            sent += batch
            net.loop.run_all(max_events=batch + 1)
    fired = net.loop.events_fired
    return {
        "datagrams": sent,
        "delivered": net.datagrams_delivered,
        "events_fired": fired,
        "wall_seconds": timer.elapsed,
        "events_per_sec": fired / timer.elapsed if timer.elapsed else 0.0,
        "datagrams_per_sec": sent / timer.elapsed if timer.elapsed else 0.0,
        "peak_rss_kb": peak_rss_kb(),
        # Timing-wheel counters: in a healthy run nearly every delivery
        # is in-band (scheduled >> overflow); a collapsing ratio means
        # the wheel geometry no longer matches the latency band.
        "wheel": net.loop.wheel_stats(),
    }


def bench_swarm_sharded(viewers: int, datagrams: int, ladder: tuple[int, ...],
                        arrivals: str = "uniform") -> dict:
    """Sharded-swarm throughput across a worker-count ladder.

    Runs one :class:`~repro.net.shard.SwarmWorkload` at each worker
    count in ``ladder`` and refuses to report if the K-invariant digests
    disagree — every bench run doubles as a PDES correctness check. The
    headline ``events_per_sec`` (what the CI gate compares) comes from
    the last rung; ``workers`` holds every rung so the committed
    baseline records the workers-N-vs-1 speedup and per-worker RSS.
    Note the speedup is only meaningful on a box with >= ladder[-1]
    cores — ``cpus`` in the top-level report says what this run had.
    """
    workload = SwarmWorkload(viewers=viewers, datagrams=datagrams,
                             arrivals=arrivals)
    rungs: dict[str, dict] = {}
    digest = ""
    report = None
    for workers in ladder:
        with WallTimer() as timer:
            report = run_workload(workload, workers)
        if digest and report.digest != digest:
            raise SystemExit(
                f"sharded digest diverged at workers={report.workers}: "
                f"{report.digest} != {digest} — the window protocol is broken"
            )
        digest = report.digest
        wall = timer.elapsed
        rungs[str(report.workers)] = {
            "mode": report.mode,
            "wall_seconds": wall,
            "events_per_sec": report.events_fired / wall if wall else 0.0,
            "worker_peak_rss_kb": [s["peak_rss_kb"] for s in report.per_shard],
        }
    first = rungs[str(min(int(k) for k in rungs))]
    final = rungs[str(report.workers)]
    wall = final["wall_seconds"]
    out = {
        "arrivals": arrivals,
        "datagrams": report.totals["sent"],
        "delivered": report.totals["delivered"],
        "digest": digest,
        "events_fired": report.events_fired,
        "windows": report.windows,
        "workers": rungs,
        "wall_seconds": wall,
        "events_per_sec": final["events_per_sec"],
        "datagrams_per_sec": report.totals["sent"] / wall if wall else 0.0,
        "peak_rss_kb": max(final["worker_peak_rss_kb"]),
        "wheel": report.wheel_summary(),
    }
    if len(rungs) > 1 and "1" in rungs:
        out["speedup_vs_1"] = first["wall_seconds"] / wall if wall else 0.0
    return out


def run_suite(smoke: bool = False, scenarios: list[str] | None = None,
              shard_workers: int | None = None,
              arrivals: str = "uniform") -> dict:
    """Run the selected scenarios (default: all, or the smoke subset).

    ``scenarios`` takes precedence over ``smoke`` for selection (smoke
    still shrinks the events_loop workload), which is how CI targets
    ``swarm_100k`` alone without paying for the full suite.

    ``shard_workers`` collapses every sharded scenario's ladder to that
    single worker count (the CI shard job runs the smoke suite twice —
    ``--shard-workers 1`` then ``2`` — and diffs the digests across
    process boundaries). ``arrivals`` switches the sharded scenarios'
    send-time process; non-uniform runs are reported under a suffixed
    scenario name so they never shadow the uniform baseline entry.
    """
    if scenarios is None:
        selected = SMOKE_SCENARIOS if smoke else ALL_SCENARIOS
    else:
        unknown = sorted(set(scenarios) - set(ALL_SCENARIOS))
        if unknown:
            raise SystemExit(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ALL_SCENARIOS)}"
            )
        selected = tuple(scenarios)
    report: dict[str, dict] = {}
    if "events_loop" in selected:
        report["events_loop"] = bench_event_loop(20_000 if smoke else 100_000)
    for name, (viewers, datagrams) in SWARM_SCENARIOS.items():
        if name in selected:
            report[name] = bench_swarm(viewers, datagrams)
    # Capture-attached variant of the mid-size swarm: the cost of the
    # wire tap relative to the no-capture fast path.
    if "swarm_10k_capture" in selected:
        report["swarm_10k_capture"] = bench_swarm(*SWARM_SCENARIOS["swarm_10k"],
                                                  capture=True)
    # Flash-crowd arrivals through the workload engine at one worker:
    # what a scenario-shaped join burst costs vs the uniform ramp.
    if "swarm_10k_flash" in selected:
        report["swarm_10k_flash"] = bench_swarm_sharded(
            10_000, 200_000, (1,), arrivals="flash-crowd")
    for name, (viewers, datagrams, ladder) in SHARD_SCENARIOS.items():
        if name in selected:
            if shard_workers is not None:
                ladder = (shard_workers,)
            key = name if arrivals == "uniform" else f"{name}_{arrivals}"
            report[key] = bench_swarm_sharded(viewers, datagrams, ladder,
                                              arrivals=arrivals)
    mode = "smoke" if smoke else "full"
    return {
        "version": 1,
        "mode": mode if scenarios is None else "select",
        "python": platform.python_version(),
        "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity")
                else (os.cpu_count() or 1),
        "scenarios": report,
        "peak_rss_kb": peak_rss_kb(),
    }


# ---------------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ---------------------------------------------------------------------------


def compare(report: dict, baseline: dict, threshold: float = 0.30) -> list[str]:
    """Regressions >``threshold`` in events/sec vs the baseline, per scenario.

    Only scenarios present in both reports are compared, so a smoke run
    checks against a committed full-run baseline.
    """
    failures = []
    for name, current in report["scenarios"].items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            continue
        base_rate = base.get("events_per_sec", 0.0)
        rate = current.get("events_per_sec", 0.0)
        if base_rate > 0 and rate < base_rate * (1.0 - threshold):
            failures.append(
                f"{name}: {rate:,.0f} events/sec is "
                f"{(1 - rate / base_rate) * 100:.0f}% below baseline {base_rate:,.0f}"
            )
    return failures


def render(report: dict) -> str:
    """Human-readable scenario table for the bench log."""
    lines = [f"core hot-path bench ({report['mode']}, python {report['python']})"]
    for name, s in report["scenarios"].items():
        parts = [f"{s['events_per_sec']:>12,.0f} events/sec"]
        if "datagrams_per_sec" in s:
            parts.append(f"{s['datagrams_per_sec']:>12,.0f} datagrams/sec")
        if "peak_rss_kb" in s:
            parts.append(f"rss {s['peak_rss_kb'] / 1024:,.0f} MiB")
        if "wheel" in s:
            wheel = s["wheel"]
            parts.append(f"wheel {wheel['scheduled']:,} in-band / "
                         f"{wheel['overflow']:,} overflow")
        if "speedup_vs_1" in s:
            ladder = "/".join(sorted(s["workers"], key=int))
            parts.append(f"speedup x{s['speedup_vs_1']:.2f} "
                         f"(workers {ladder})")
        if "digest" in s:
            parts.append(f"digest {s['digest'][:12]}")
        lines.append(f"  {name:<18} " + "  ".join(parts))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small-swarm subset for CI")
    parser.add_argument("--scenarios", type=lambda s: s.split(","), default=None,
                        metavar="A,B,...",
                        help="comma-separated scenario names to run "
                             f"(from: {', '.join(ALL_SCENARIOS)})")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare only; leave the baseline alone")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline BENCH_core.json to compare against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional events/sec regression that fails the check")
    parser.add_argument("--shard-workers", type=int, default=None, metavar="N",
                        help="run sharded scenarios at exactly N workers instead "
                             "of their ladder (CI diffs digests across runs)")
    parser.add_argument("--arrivals", choices=("uniform", "flash-crowd"),
                        default="uniform",
                        help="send-time process for the sharded scenarios; "
                             "flash-crowd reports under a suffixed scenario name")
    args = parser.parse_args(argv)
    if args.scenarios is not None and not args.no_write and args.out == DEFAULT_OUT:
        parser.error("--scenarios produces a partial report; committing it as the "
                     "baseline would blind the regression gate — add --no-write "
                     "or point --out elsewhere")
    if ((args.shard_workers is not None or args.arrivals != "uniform")
            and not args.no_write and args.out == DEFAULT_OUT):
        parser.error("--shard-workers/--arrivals change what the sharded "
                     "scenarios measure; committing that as the baseline would "
                     "skew the gate — add --no-write or point --out elsewhere")

    report = run_suite(smoke=args.smoke, scenarios=args.scenarios,
                       shard_workers=args.shard_workers, arrivals=args.arrivals)
    print(render(report))

    status = 0
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = compare(report, baseline, args.threshold)
        if failures:
            print("\nPERF REGRESSION vs " + str(args.check))
            for failure in failures:
                print("  " + failure)
            status = 1
        else:
            print(f"\nno regression vs {args.check} (threshold {args.threshold:.0%})")
    if not args.no_write:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return status


# ---------------------------------------------------------------------------
# pytest-benchmark wrappers (collected with the rest of benchmarks/)
# ---------------------------------------------------------------------------


def bench_smoke_suite(save_result) -> dict:
    report = run_suite(smoke=True)
    save_result("core_hotpath_smoke", render(report))
    return report


def test_core_hotpath_smoke(benchmark, save_result):
    """Smoke-scale core bench under the pytest-benchmark timer."""
    report = benchmark.pedantic(bench_smoke_suite, args=(save_result,),
                                rounds=1, iterations=1)
    assert report["scenarios"]["swarm_1k"]["delivered"] > 0
    # bench_swarm_sharded already hard-fails on a digest mismatch
    # between ladder rungs; this just pins that the scenario ran.
    assert report["scenarios"]["swarm_1k_shard"]["digest"]


if __name__ == "__main__":
    raise SystemExit(main())
