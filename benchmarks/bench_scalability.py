"""Scalability: the detection pipeline under growing corpus noise.

The pipeline's verdicts must be a function of the PDN customers, not of
how much unrelated internet surrounds them — and runtime should grow
roughly linearly with corpus size.
"""

import time

from conftest import run_once

from repro.detection.pipeline import DetectionPipeline
from repro.environment import Environment
from repro.util.tables import render_table
from repro.web.corpus import CorpusConfig, build_corpus


def run_scale(noise_multiplier: int):
    config = CorpusConfig(
        noise_video_sites=40 * noise_multiplier,
        noise_nonvideo_sites=20 * noise_multiplier,
        noise_apps=12 * noise_multiplier,
    )
    env = Environment(seed=3100 + noise_multiplier)
    started = time.perf_counter()
    corpus = build_corpus(env, config)
    report = DetectionPipeline(env, corpus, watch_seconds=25.0).run()
    elapsed = time.perf_counter() - started
    totals = [report.provider_counts(p) for p in ("peer5", "streamroot", "viblast")]
    return {
        "noise_x": noise_multiplier,
        "sites": len(corpus.websites),
        "apps": len(corpus.apps),
        "confirmed_sites": sum(c.confirmed_sites for c in totals),
        "potential_sites": sum(c.potential_sites for c in totals),
        "confirmed_apps": sum(c.confirmed_apps for c in totals),
        "wall_seconds": elapsed,
    }


def sweep():
    return [run_scale(m) for m in (1, 2, 4)]


def test_pipeline_scalability(benchmark, save_result):
    points = run_once(benchmark, sweep)
    save_result(
        "scalability",
        render_table(
            ["noise x", "sites", "apps", "confirmed/potential sites", "confirmed apps", "wall s"],
            [[p["noise_x"], p["sites"], p["apps"],
              f'{p["confirmed_sites"]}/{p["potential_sites"]}',
              p["confirmed_apps"], f'{p["wall_seconds"]:.2f}'] for p in points],
            title="Pipeline scalability under corpus noise",
        ),
    )
    # Verdicts are invariant under noise.
    for point in points:
        assert point["confirmed_sites"] == 17
        assert point["potential_sites"] == 134
        assert point["confirmed_apps"] == 18
    # Runtime grows sub-quadratically (roughly linear in corpus size).
    small, _, large = points
    size_ratio = large["sites"] / small["sites"]
    time_ratio = large["wall_seconds"] / max(small["wall_seconds"], 1e-6)
    assert time_ratio < size_ratio * 2.5
