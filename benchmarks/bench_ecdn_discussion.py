"""§VI Discussion: Microsoft eCDN — which risks survived the acquisition."""

from conftest import run_once

from repro.experiments import ecdn_discussion


def test_ecdn_discussion(benchmark, save_result):
    result = run_once(benchmark, ecdn_discussion.run, seed=606)
    save_result("ecdn_discussion", result.render())

    # Paper: the tenant id is "no longer publicly visible. Thus it
    # prevents the free riding attack."
    assert result.free_riding_prevented
    assert not result.tenant_id_in_page
    assert result.keys_scraped == 0
    # Paper: "in the direct content pollution test, no peer connection is
    # observed" (blocked); "we observed the polluted video segments being
    # transmitted" in the segment pollution test.
    assert not result.direct_pollution_triggered
    assert result.segment_pollution_triggered
    assert result.segment_pollution_polluted_played > 0
