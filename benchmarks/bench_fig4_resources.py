"""Fig. 4: resource consumption of serving as a PDN peer."""

from conftest import run_once

from repro.experiments import resource_fig4


def test_fig4_resource_consumption(benchmark, save_result, results_dir):
    result = run_once(benchmark, resource_fig4.run, seed=44)
    save_result("fig4_resources", result.render())

    # Per-second series for replotting the figure.
    lines = ["viewer,t,cpu_percent,memory_mb"]
    for viewer in result.viewers.values():
        for (t, cpu), (_, mem) in zip(viewer.cpu_series, viewer.memory_series):
            lines.append(f"{viewer.name},{t:.0f},{cpu:.2f},{mem:.1f}")
    (results_dir / "fig4_resources.csv").write_text("\n".join(lines) + "\n")

    # Paper: ~ +15% CPU and ~ +10% memory for PDN peers vs no-peer.
    assert 0.10 <= result.cpu_overhead <= 0.22
    assert 0.06 <= result.memory_overhead <= 0.15
    # The no-peer viewer never uploads; the seeding peer does.
    assert result.viewers["no-peer"].uploaded_bytes == 0
    assert result.viewers["peer-a"].uploaded_bytes > 0
    # All three watched the same stream.
    downloads = [v.downloaded_bytes for v in result.viewers.values()]
    assert max(downloads) < min(downloads) * 1.6
