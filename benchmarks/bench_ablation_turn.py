"""Ablation: TURN relaying vs direct P2P — leak elimination and its cost.

The §V-C "fundamental solution": with relay-only peers no transport
address is ever exposed, but every P2P byte crosses the TURN server
twice — the overhead the paper judges infeasible at PDN scale.
"""

from conftest import run_once

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.util.tables import render_table


def run_point(relay_only: bool):
    env = Environment(seed=3000 + int(relay_only))
    bed = build_test_bed(env, PEER5, segment_bytes=500_000)
    bed.site.landing.embed.relay_only = relay_only
    analyzer = PdnAnalyzer(env)
    peer_a = analyzer.create_peer(name="a", country="US")
    peer_a.watch_test_stream(bed)
    analyzer.run(10.0)
    peer_b = analyzer.create_peer(name="b", country="CN")
    session_b = peer_b.watch_test_stream(bed)
    analyzer.run(70.0)
    a_ip = peer_a.browser.host.public_ip
    b_ip = peer_b.browser.host.public_ip
    leaked = int(b_ip in peer_a.harvested_ips()) + int(a_ip in peer_b.harvested_ips())
    relayed = env.turn.relayed_bytes if env._turn is not None else 0
    p2p = session_b.player.stats.bytes_from_p2p
    finished = session_b.player.finished
    analyzer.teardown()
    return {
        "mode": "TURN relay" if relay_only else "direct",
        "ips_leaked": leaked,
        "p2p_bytes": p2p,
        "relay_bytes": relayed,
        "finished": finished,
    }


def sweep():
    return [run_point(False), run_point(True)]


def test_ablation_turn_relay(benchmark, save_result):
    points = run_once(benchmark, sweep)
    save_result(
        "ablation_turn",
        render_table(
            ["mode", "peer IPs leaked", "P2P bytes", "relay bytes", "playback ok"],
            [[p["mode"], p["ips_leaked"], p["p2p_bytes"], p["relay_bytes"], p["finished"]] for p in points],
            title="Ablation: direct P2P vs TURN relaying",
        ),
    )
    direct, relay = points
    assert direct["ips_leaked"] == 2  # both directions leak without TURN
    assert relay["ips_leaked"] == 0  # TURN eliminates the leak
    assert relay["finished"] and direct["finished"]
    assert relay["p2p_bytes"] > 0  # delivery still works through the relay
    # ...at the cost of relaying every byte at least twice (in + out).
    assert relay["relay_bytes"] >= 2 * relay["p2p_bytes"] * 0.9
    assert direct["relay_bytes"] == 0
