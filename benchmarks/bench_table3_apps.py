"""Table III: the 18 confirmed PDN apps."""

from conftest import run_once

from repro.experiments import detection_tables
from repro.web.corpus import CONFIRMED_APPS


def test_table3_confirmed_apps(benchmark, save_result):
    result = run_once(benchmark, detection_tables.run, seed=2026, watch_seconds=30.0)
    save_result("table3_apps", result.render_table3())

    rows = result.table3_rows()
    assert len([r for r in rows if r[3] == "confirmed"]) == len(CONFIRMED_APPS) == 18
    statuses = {row[0]: row[3] for row in rows}
    assert statuses["iflix.play"] == "confirmed"  # the 50M-download headliner
    assert statuses["fr.francetv.pluzz"] == "confirmed"
