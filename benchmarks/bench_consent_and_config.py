"""§IV-D: the corpus-wide consent audit and cellular-config study."""

from conftest import run_once

from repro.experiments import consent_and_config


def test_consent_and_config(benchmark, save_result):
    result = run_once(benchmark, consent_and_config.run, seed=909)
    save_result("consent_and_config", result.render())

    # Paper: 134 websites + 38 apps + 10 private services, none informs.
    assert result.customers_checked == 182
    assert result.informing_viewers == 0
    assert result.allowing_disable == 0
    # Paper: exactly three apps allow cellular upload+download, >15M installs.
    assert result.cellular_full == [
        "com.arenacloudtv.android",
        "com.bongo.bioscope",
        "com.portonics.mygp",
    ]
    assert result.flagged_total_downloads > 15_000_000
    # Everyone else leeches on cellular at most.
    assert result.cellular_leech == result.configs_read - 3
