"""Harness pipeline: parallel `repro all` vs sequential, digests equal.

Times the three fastest experiments through the Runner at ``--jobs 2``
and asserts the parallel pipeline's content digests match a sequential
reference run — the property that makes ``repro all --jobs N`` safe.
"""

from conftest import run_once

from repro.harness import registry
from repro.harness.runner import Runner, RunRequest

NAMES = ["token-defense", "consent", "ecdn"]


def _requests():
    registry.load_all()
    return [
        RunRequest(name, registry.DEFAULT_SEED,
                   registry.get(name).resolve_params(quick=True))
        for name in NAMES
    ]


def test_parallel_runner_matches_sequential(benchmark, save_result):
    sequential = Runner(jobs=1).run(_requests())
    outcomes = run_once(benchmark, Runner(jobs=2).run, _requests())

    assert [o.record.experiment for o in outcomes] == NAMES
    assert all(o.record.ok for o in outcomes)
    digests = {o.record.experiment: o.record.result_digest for o in outcomes}
    reference = {o.record.experiment: o.record.result_digest for o in sequential}
    assert digests == reference

    lines = [f"{name}  {digests[name]}" for name in NAMES]
    save_result("harness_parallel", "jobs=2 digests == jobs=1 digests\n" + "\n".join(lines))
