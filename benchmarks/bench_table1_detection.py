"""Table I: detected PDN customers per provider (potential vs confirmed)."""

from conftest import run_once

from repro.experiments import detection_tables


def test_table1_detected_pdn_customers(benchmark, save_result):
    result = run_once(benchmark, detection_tables.run, seed=2024, watch_seconds=30.0)
    save_result("table1_detection", result.render_table1())

    report = result.report
    for provider, sites, apps, apks in [
        ("peer5", (16, 60), (15, 31), (199, 548)),
        ("streamroot", (1, 53), (3, 6), (53, 68)),
        ("viblast", (0, 21), (0, 1), (0, 11)),
    ]:
        counts = report.provider_counts(provider)
        assert (counts.confirmed_sites, counts.potential_sites) == sites
        assert (counts.confirmed_apps, counts.potential_apps) == apps
        assert (counts.confirmed_apks, counts.potential_apks) == apks
