"""Streaming detection benchmark: throughput and the memory bound.

Measures the sharded streaming scan (``StreamingDetectionPipeline``,
confirm phase off) at the paper's 300K-domain corpus and at a 10×
synthetic 3M-domain corpus, recording virtual domains/sec, materialised
sites/sec, and peak RSS — the headline claim being that RSS stays flat
as the corpus grows, because shards materialise one droppable site at a
time and retain only potential scans. A full 300K run (confirm phase
on) rides along to record end-to-end wall time and the report digest.

Results are written to ``benchmarks/results/BENCH_detection.json`` per
the docs/PERFORMANCE.md recording policy. Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_detection_stream.py --smoke \
        --check benchmarks/results/BENCH_detection.json --no-write

Scenarios run smallest-first in one process, so the monotonic
RUSAGE_SELF high-water mark is honest for each scenario, and the
300K-vs-3M ratio (``rss_ratio``, policy: <= 1.5) compares like with
like. The scan is fully seeded, so two runs do identical work.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.detection.streaming import StreamingDetectionPipeline
from repro.util.perf import WallTimer, peak_rss_kb
from repro.web.corpus import CorpusConfig, quick_corpus_config

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "BENCH_detection.json"

#: Peak-RSS growth allowed between the small and the 10× corpus.
RSS_RATIO_LIMIT = 1.5
SHARDS = 8


def corpus_300k() -> CorpusConfig:
    """The paper-scale corpus (defaults)."""
    return CorpusConfig()


def corpus_3m() -> CorpusConfig:
    """A 10× synthetic corpus: 3M virtual domains, 10× noise population."""
    return CorpusConfig(
        virtual_total_domains=3_000_000,
        virtual_video_related=687_130,
        noise_video_sites=800,
        noise_nonvideo_sites=400,
        noise_apps=250,
    )


def smoke_300k() -> CorpusConfig:
    """Smoke stand-in for the small corpus."""
    return quick_corpus_config()


def smoke_3m() -> CorpusConfig:
    """Smoke stand-in for the 10× corpus."""
    return CorpusConfig(noise_video_sites=80, noise_nonvideo_sites=40, noise_apps=40)


def bench_scan(name: str, config: CorpusConfig, confirm: bool = False) -> dict:
    """Stream one corpus through the scan (and optionally confirm) phase."""
    pipeline = StreamingDetectionPipeline(
        seed=2024, config=config, shards=SHARDS, confirm=confirm, watch_seconds=30.0
    )
    with WallTimer() as timer:
        outcome = pipeline.run()
    merged = outcome.merged
    wall = timer.elapsed
    return {
        "scenario": name,
        "confirm": confirm,
        "shards": SHARDS,
        "virtual_domains": config.virtual_total_domains,
        "sites_materialised": merged.sites_generated,
        "apps_materialised": merged.apps_generated,
        "pages_fetched": merged.pages_fetched,
        "wall_seconds": wall,
        "domains_per_sec": config.virtual_total_domains / wall if wall else 0.0,
        "sites_per_sec": merged.sites_generated / wall if wall else 0.0,
        "peak_rss_kb": peak_rss_kb(),
        "digest": outcome.report.content_digest() if confirm else merged.content_digest(),
    }


def run_benchmarks(smoke: bool = False) -> dict:
    """Run all scenarios smallest-first; derive the RSS-bound verdict."""
    small = smoke_300k() if smoke else corpus_300k()
    big = smoke_3m() if smoke else corpus_3m()
    scenarios = {}
    scenarios["scan_300k"] = bench_scan("scan_300k", small)
    baseline_rss = scenarios["scan_300k"]["peak_rss_kb"]
    scenarios["scan_3m"] = bench_scan("scan_3m", big)
    big_rss = scenarios["scan_3m"]["peak_rss_kb"]
    if not smoke:
        scenarios["full_300k"] = bench_scan("full_300k", small, confirm=True)
    ratio = big_rss / baseline_rss if baseline_rss else 0.0
    return {
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "rss_ratio": ratio,
        "rss_ratio_limit": RSS_RATIO_LIMIT,
        "rss_bounded": ratio <= RSS_RATIO_LIMIT,
        "scenarios": scenarios,
    }


def compare(report: dict, baseline: dict, threshold: float = 0.30) -> list[str]:
    """Regressions vs a baseline report, per the PERFORMANCE.md policy.

    Always fails on a broken RSS bound in the fresh report. Scenario
    throughput (>30% ``domains_per_sec`` drop, absorbing CI-runner
    noise) and digests are compared only between same-mode runs — smoke
    and full scan different corpora, so cross-mode numbers are not
    comparable.
    """
    problems = []
    if not report.get("rss_bounded", False):
        problems.append(
            f"peak RSS ratio {report.get('rss_ratio', 0):.2f} exceeds "
            f"the {RSS_RATIO_LIMIT}x memory bound"
        )
    if report.get("mode") != baseline.get("mode"):
        return problems
    for name, scenario in report.get("scenarios", {}).items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            continue
        fresh, old = scenario.get("domains_per_sec", 0.0), base.get("domains_per_sec", 0.0)
        if old and fresh < old * (1.0 - threshold):
            problems.append(
                f"{name}: domains/sec regressed {old:.0f} -> {fresh:.0f} "
                f"(more than {threshold:.0%})"
            )
        if base.get("digest") and scenario.get("digest") != base["digest"]:
            problems.append(f"{name}: scan digest drifted from the committed baseline")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down corpora (CI gate)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write the report file")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to compare against; exit 1 on regression")
    args = parser.parse_args(argv)
    if args.smoke and not args.no_write and args.out == DEFAULT_OUT:
        print("refusing to overwrite the committed full baseline with a smoke run; "
              "add --no-write or point --out elsewhere")
        return 2
    report = run_benchmarks(smoke=args.smoke)
    for name, scenario in report["scenarios"].items():
        print(f"{name}: {scenario['domains_per_sec']:,.0f} virtual domains/sec, "
              f"{scenario['sites_per_sec']:,.0f} sites/sec, "
              f"peak RSS {scenario['peak_rss_kb']} kB")
    print(f"RSS ratio (3M / 300K): {report['rss_ratio']:.3f} "
          f"(limit {RSS_RATIO_LIMIT}, {'ok' if report['rss_bounded'] else 'EXCEEDED'})")
    if not args.no_write:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = compare(report, baseline)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"check against {args.check}: ok")
    return 0 if report["rss_bounded"] else 1


def test_streaming_scan_rss_bounded():
    """Pytest entry: the smoke corpora already demonstrate the bound."""
    report = run_benchmarks(smoke=True)
    assert report["rss_bounded"], f"rss ratio {report['rss_ratio']:.2f}"


if __name__ == "__main__":
    raise SystemExit(main())
