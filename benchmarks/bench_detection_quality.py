"""Detector precision/recall against the corpus ground truth."""

from conftest import run_once

from repro.experiments import detection_quality


def test_detection_quality(benchmark, save_result):
    result = run_once(benchmark, detection_quality.run, seed=1101)
    save_result("detection_quality", result.render())

    for stage in (
        "signature scan (websites)",
        "signature scan (apps)",
        "dynamic confirmation (websites)",
        "dynamic confirmation (apps)",
        "private services",
    ):
        row = result.row(stage)
        assert row.precision == 1.0, f"{stage}: false positives {row.false_positives}"
        assert row.recall == 1.0, f"{stage}: false negatives {row.false_negatives}"
