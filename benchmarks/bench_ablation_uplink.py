"""Ablation: seeder uplink capacity vs P2P offload.

§IV-D footnote: "Due to the limit of our network bandwidth, adding more
peers (over 5 peers) will significantly lower the download traffic of
peers". With an unconstrained uplink the seeder's upload keeps scaling
with the leecher count; with a finite residential uplink it saturates
and leechers silently fall back to the CDN — the hybrid design degrades
instead of stalling.
"""

from conftest import run_once

from repro.experiments import bandwidth_fig5
from repro.util.tables import render_table


def sweep():
    unconstrained = bandwidth_fig5.run(seed=57, max_neighbors=5)
    capped = bandwidth_fig5.run_saturation(seed=57, max_neighbors=5)
    return unconstrained, capped


def test_ablation_uplink_saturation(benchmark, save_result):
    unconstrained, capped = run_once(benchmark, sweep)
    rows = []
    for open_point, capped_point in zip(unconstrained.points, capped.points):
        rows.append(
            [
                open_point.neighbor_peers,
                f"{open_point.upload_bytes / 1e6:.0f}MB",
                f"{capped_point.upload_bytes / 1e6:.0f}MB",
            ]
        )
    save_result(
        "ablation_uplink",
        render_table(
            ["# peers served", "upload (unlimited uplink)", "upload (0.6 MB/s uplink)"],
            rows,
            title="Ablation: seeder uplink capacity vs P2P offload",
        ),
    )
    # Unconstrained upload keeps scaling; the capped seeder falls behind.
    assert unconstrained.points[-1].upload_bytes > capped.points[-1].upload_bytes
    # Saturation bites harder as the leecher count grows.
    gap_small = unconstrained.points[0].upload_bytes - capped.points[0].upload_bytes
    gap_large = unconstrained.points[-1].upload_bytes - capped.points[-1].upload_bytes
    assert gap_large > gap_small
    # Per-leecher P2P service degrades under the cap.
    per_leecher_capped = capped.points[-1].upload_bytes / 5
    per_leecher_open = unconstrained.points[-1].upload_bytes / 5
    assert per_leecher_capped < per_leecher_open
