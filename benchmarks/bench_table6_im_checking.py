"""Table VI: overhead of peer-assisted IM checking.

Full-paper parameters are 3 MB / 10 s segments for 600 s; the benchmark
runs 300 s (half the duration, same rates) to stay fast. The relative
CPU/memory columns and the latency delta are duration-invariant.
"""

from conftest import run_once

from repro.experiments import im_checking


def test_table6_im_checking(benchmark, save_result):
    result = run_once(
        benchmark, im_checking.run,
        seed=66, segment_bytes=3_000_000, segment_seconds=10.0, duration=300.0,
    )
    save_result("table6_im_checking", result.render())

    base, pdn, pdn_im = result.groups
    # Ordering: each layer costs more than the previous.
    assert base.cpu < pdn.cpu < pdn_im.cpu
    assert base.memory < pdn.memory < pdn_im.memory
    # IM adds a small increment on top of PDN (paper: +0.03 on both).
    assert (pdn_im.cpu - pdn.cpu) / base.cpu < 0.10
    assert (pdn_im.memory - pdn.memory) / base.memory < 0.10
    # Latency: PDN delivery tens of ms; IM adds < 80 ms per 3 MB segment.
    assert pdn.latency_ms is not None and 20.0 < pdn.latency_ms < 120.0
    assert result.latency_delta_ms() is not None
    assert 30.0 < result.latency_delta_ms() < 80.0
    # No playback harm from the defense.
    assert pdn_im.stalls == 0
