"""Ablation: dynamic-analysis vantage point vs confirmations.

§III-C/§III-D: "the PDN traffic of Douyu TV is only observable through
IP addresses located in China" — geolocation-gated customers confirm
only when the probe viewers sit in the right country. This sweep re-runs
dynamic confirmation on the geo-gated potential customers from a US and
a CN vantage.
"""

from conftest import run_once

from repro.detection.dynamic import DynamicConfirmer
from repro.environment import Environment
from repro.util.tables import render_table
from repro.web.corpus import CorpusConfig, build_corpus
from repro.web.page import LoadCondition


def sweep():
    env = Environment(seed=5005)
    corpus = build_corpus(
        env, CorpusConfig(noise_video_sites=5, noise_nonvideo_sites=2, noise_apps=2)
    )
    geo_gated = [
        site
        for site in corpus.websites
        for page in [site.landing]
        if page is not None
        and page.embed is not None
        and page.embed.load_condition is LoadCondition.GEO
        and page.embed.geo_country == "CN"
    ][:8]
    rows = []
    confirmed_by = {}
    for vantage in ("US", "CN"):
        confirmer = DynamicConfirmer(env, watch_seconds=25.0, probe_country=vantage)
        confirmed = sum(1 for site in geo_gated if confirmer.confirm_site(site).confirmed)
        confirmed_by[vantage] = confirmed
        rows.append([vantage, len(geo_gated), confirmed])
    return rows, confirmed_by, len(geo_gated)


def test_ablation_vantage_point(benchmark, save_result):
    rows, confirmed_by, total = run_once(benchmark, sweep)
    save_result(
        "ablation_vantage",
        render_table(
            ["probe vantage", "geo-gated (CN) targets", "confirmed"],
            rows,
            title="Ablation: dynamic-analysis vantage vs confirmations (Douyu effect)",
        ),
    )
    assert confirmed_by["US"] == 0  # invisible from outside China
    assert confirmed_by["CN"] == total  # fully visible from inside
