"""Ablation: crawl depth vs detector recall.

The paper limits its crawler to depth 3 and acknowledges missing
customers whose integration sits deeper. This sweep re-scans the corpus
at depths 1–4 and reports how many of the 134 potential public
customers each depth recovers.
"""

from conftest import run_once

from repro.detection.scanner import WebsiteScanner
from repro.environment import Environment
from repro.util.tables import render_table
from repro.web.corpus import build_corpus


def sweep():
    env = Environment(seed=4000)
    corpus = build_corpus(env)
    truth = {r.name for r in corpus.records if r.kind == "website"}
    rows = []
    for depth in (1, 2, 3, 4):
        scanner = WebsiteScanner(env.urlspace, max_depth=depth, include_generic=False)
        found = set()
        for site in corpus.websites:
            if scanner.scan(site.domain).is_potential:
                found.add(site.domain)
        detected = found & truth
        rows.append([depth, len(detected), f"{len(detected) / len(truth) * 100:.0f}%",
                     scanner.pages_fetched])
    return rows, len(truth)


def test_ablation_crawl_depth(benchmark, save_result):
    rows, total = run_once(benchmark, sweep)
    save_result(
        "ablation_crawl_depth",
        render_table(
            ["max depth", f"potential customers found (of {total})", "recall", "pages fetched"],
            rows,
            title="Ablation: crawl depth vs detector recall",
        ),
    )
    recall = {row[0]: row[1] for row in rows}
    assert recall[1] < recall[2] <= recall[3]  # deeper crawls find more
    assert recall[3] == total  # depth 3 covers the corpus (by construction)
    assert recall[4] == total  # going deeper costs pages, gains nothing here
    cost = {row[0]: row[3] for row in rows}
    assert cost[4] >= cost[3]
