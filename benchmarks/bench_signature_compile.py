"""PERF001 regression micro-benchmark: ``Signature.compiled()`` caching.

The seed shipped ``compiled()`` recompiling its regex on every
``matches()`` call — the hottest path in the whole detection pipeline
(every signature × every page of every site, §III-C). The fix compiles
once per distinct (kind, pattern) behind ``functools.lru_cache``. This
benchmark times the scan hot path and archives a cached-vs-uncached
comparison so the regression is visible if the cache is ever dropped;
reprolint rule PERF001 guards the same bug statically.
"""

from conftest import run_once

from repro.detection.signatures import (
    Signature,
    SignatureKind,
    _compile_signature,
    provider_signatures,
)
from repro.util.perf import WallTimer
from repro.util.tables import render_kv

COMPILE_CALLS = 20_000


def _scan_pages(signatures: list[Signature], pages: list[str]) -> int:
    hits = 0
    for page in pages:
        for signature in signatures:
            if signature.matches(page):
                hits += 1
    return hits


def test_signature_match_hot_path(benchmark, save_result):
    signatures = provider_signatures()
    pages = [
        f'<script src="https://api.peer5.com/peer5.js?id={i:08x}"></script>'
        for i in range(200)
    ]
    hits = benchmark(_scan_pages, signatures, pages)
    assert hits == 200  # every page carries exactly one Peer5 URL signature

    # One-shot cached vs uncached comparison, archived as the PERF001 note.
    probe = Signature(SignatureKind.URL_PATTERN, "api.peer5.com/peer5.js?id=*", "peer5")
    probe.compiled()  # warm the cache
    with WallTimer() as cached:
        for _ in range(COMPILE_CALLS):
            probe.compiled()
    with WallTimer() as uncached:
        for _ in range(COMPILE_CALLS):
            _compile_signature.__wrapped__(probe.kind, probe.pattern)
    speedup = uncached.elapsed / max(cached.elapsed, 1e-9)
    save_result(
        "signature_compile",
        render_kv(
            f"Signature.compiled() caching (PERF001), {COMPILE_CALLS} calls",
            [
                ("uncached (seed behaviour) s", uncached.elapsed),
                ("cached (lru_cache) s", cached.elapsed),
                ("speedup x", speedup),
            ],
        ),
    )
    assert speedup > 3.0, "lru_cache on _compile_signature should dominate recompiling"
