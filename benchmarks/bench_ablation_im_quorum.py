"""Ablation: IM reporting quorum vs P2P utility and server cost.

A larger quorum means more independent reporters must agree before a
SIM exists — robust, but in small swarms segments go unverifiable and
every P2P fetch falls back to the CDN. This sweep fixes a 3-seeder swarm
and raises the quorum past the seeder count.
"""

from conftest import run_once

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.util.tables import render_table

SEEDERS = 3


def run_point(quorum: int):
    env = Environment(seed=2000 + quorum)
    bed = build_test_bed(env, PEER5, video_segments=8)
    coordinator = IntegrityCoordinator(
        env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=quorum
    ).install()
    integrity = ClientIntegrity(env.loop, coordinator)
    analyzer = PdnAnalyzer(env)
    for i in range(SEEDERS):
        peer = analyzer.create_peer(name=f"seeder-{i}", integrity=integrity)
        peer.watch_test_stream(bed)
    analyzer.run(10.0)
    receiver = analyzer.create_peer(name="receiver", integrity=integrity)
    session = receiver.watch_test_stream(bed)
    analyzer.run(60.0)
    stats = session.player.stats
    result = {
        "quorum": quorum,
        "p2p_ratio": stats.p2p_ratio,
        "stalls": stats.stalls,
        "sim_rejections": integrity.rejections,
        "finished": session.player.finished,
    }
    analyzer.teardown()
    return result


def sweep():
    return [run_point(q) for q in (1, 2, 3, 5)]


def test_ablation_im_quorum(benchmark, save_result):
    points = run_once(benchmark, sweep)
    save_result(
        "ablation_im_quorum",
        render_table(
            ["quorum", "receiver p2p ratio", "stalls", "finished"],
            [[p["quorum"], f"{p['p2p_ratio'] * 100:.0f}%", p["stalls"], p["finished"]] for p in points],
            title=f"Ablation: IM quorum vs P2P utility ({SEEDERS} seeders)",
        ),
    )
    by_quorum = {p["quorum"]: p for p in points}
    # Achievable quorums keep P2P alive and playback clean.
    assert by_quorum[1]["p2p_ratio"] > 0.3
    assert by_quorum[3]["finished"]
    # A quorum beyond the seeder count starves SIM issuance: P2P collapses
    # to CDN fallback (delivery still completes — the defense fails safe).
    assert by_quorum[5]["p2p_ratio"] == 0.0
    assert by_quorum[5]["finished"]
