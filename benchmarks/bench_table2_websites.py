"""Table II: the 17 confirmed PDN websites."""

from conftest import run_once

from repro.experiments import detection_tables
from repro.web.corpus import CONFIRMED_WEBSITES


def test_table2_confirmed_websites(benchmark, save_result):
    result = run_once(benchmark, detection_tables.run, seed=2025, watch_seconds=30.0)
    save_result("table2_websites", result.render_table2())

    rows = result.table2_rows()
    assert len([r for r in rows if r[3] == "confirmed"]) == len(CONFIRMED_WEBSITES) == 17
    assert not [r for r in rows if r[3] == "FALSE POSITIVE"]
    # the paper's most popular confirmed customers are found
    statuses = {row[0]: row[3] for row in rows}
    assert statuses["rt.com"] == "confirmed"
    assert statuses["clarin.com"] == "confirmed"
