"""Fig. 5: upload bandwidth growth with the number of served peers."""

from conftest import run_once

from repro.experiments import bandwidth_fig5


def test_fig5_bandwidth_consumption(benchmark, save_result, results_dir):
    result = run_once(benchmark, bandwidth_fig5.run, seed=55)
    save_result("fig5_bandwidth", result.render())

    lines = ["peers_served,download_bytes,upload_bytes,cpu_percent"]
    for point in result.points:
        lines.append(
            f"{point.neighbor_peers},{point.download_bytes},{point.upload_bytes},{point.cpu_mean:.2f}"
        )
    (results_dir / "fig5_bandwidth.csv").write_text("\n".join(lines) + "\n")

    # Upload grows monotonically with the neighbor count...
    assert result.upload_monotone()
    # ...reaching ~200% of the download at 3 peers (the paper's headline).
    assert 1.7 <= result.points[-1].upload_over_download <= 2.3
    # Download stays roughly flat (WebRTC scalability).
    downloads = [p.download_bytes for p in result.points]
    assert max(downloads) <= min(downloads) * 1.5
    # CPU grows with upload (DTLS encryption is the cost driver).
    cpus = [p.cpu_mean for p in result.points]
    assert cpus[0] < cpus[-1]
